// EventLog: the sink must honour the level threshold while the ring buffer
// records everything (it is the flight recorder), lines must be strict
// cts.events.v1 JSON, and a dumped ring must replay below-threshold events.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "cts/obs/event_log.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

/// Splits JSONL text into its non-empty lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(LogLevel, NamesRoundTrip) {
  EXPECT_STREQ(obs::level_name(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::level_name(obs::LogLevel::kError), "error");
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_THROW(obs::parse_log_level("verbose"), cts::util::InvalidArgument);
  EXPECT_THROW(obs::parse_log_level(""), cts::util::InvalidArgument);
}

TEST(LogLevel, ParseIsCaseInsensitive) {
  EXPECT_EQ(obs::parse_log_level("INFO"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("Debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("WaRn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("ERROR"), obs::LogLevel::kError);
}

TEST(LogLevel, ParseErrorNamesAcceptedSpellings) {
  try {
    obs::parse_log_level("loud");
    FAIL() << "expected InvalidArgument";
  } catch (const cts::util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("debug|info|warn|error"), std::string::npos) << what;
    EXPECT_NE(what.find("loud"), std::string::npos) << what;
  }
}

TEST(EventLog, SinkFiltersByLevelButRingKeepsEverything) {
  obs::EventLog log;
  std::ostringstream sink;
  log.to_stream(&sink);
  log.set_min_level(obs::LogLevel::kInfo);

  log.log(obs::LogLevel::kDebug, "job.detail", {{"step", 1}});
  log.log(obs::LogLevel::kInfo, "job.done", {{"wall_ms", 12.5}});
  log.log(obs::LogLevel::kError, "job.fail", {{"error", "boom"}});

  // Sink: debug suppressed, info and error written.
  const std::vector<std::string> emitted = lines_of(sink.str());
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_NE(emitted[0].find("\"job.done\""), std::string::npos);
  EXPECT_NE(emitted[1].find("\"job.fail\""), std::string::npos);
  EXPECT_EQ(log.emitted(), 2u);

  // Ring: all three, oldest first, debug included.
  const std::vector<obs::LogEvent> ring = log.ring();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].event, "job.detail");
  EXPECT_EQ(ring[0].level, obs::LogLevel::kDebug);
  EXPECT_EQ(ring[2].event, "job.fail");
  EXPECT_EQ(log.recorded(), 3u);
}

TEST(EventLog, FormatLineIsStrictJsonWithTypedFields) {
  obs::LogEvent e;
  e.level = obs::LogLevel::kWarn;
  e.event = "worker.down";
  e.ts_ms = 1754524800123;
  e.fields = {{"worker", std::string("127.0.0.1:9001")},
              {"consecutive_failures", 3},
              {"jobs_ok", std::uint64_t{17}},
              {"wall_ms", 812.4},
              {"fatal", false}};
  const std::string line = obs::EventLog::format_line(e);

  std::string error;
  ASSERT_TRUE(obs::json_parse_check(line, &error)) << error << "\n" << line;
  const obs::JsonValue doc = obs::json_parse(line);
  EXPECT_EQ(doc.at("schema").as_string(), obs::kEventsSchema);
  EXPECT_EQ(doc.at("level").as_string(), "warn");
  EXPECT_EQ(doc.at("event").as_string(), "worker.down");
  EXPECT_DOUBLE_EQ(doc.at("ts_ms").as_number(), 1754524800123.0);
  EXPECT_GT(doc.at("pid").as_number(), 0.0);
  const obs::JsonValue& fields = doc.at("fields");
  EXPECT_EQ(fields.at("worker").as_string(), "127.0.0.1:9001");
  EXPECT_DOUBLE_EQ(fields.at("consecutive_failures").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(fields.at("jobs_ok").as_number(), 17.0);
  EXPECT_DOUBLE_EQ(fields.at("wall_ms").as_number(), 812.4);
  EXPECT_FALSE(fields.at("fatal").as_bool());
}

TEST(EventLog, RingEvictsOldestAtCapacity) {
  obs::EventLog log;
  log.set_ring_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.log(obs::LogLevel::kDebug, "tick", {{"i", i}});
  }
  const std::vector<obs::LogEvent> ring = log.ring();
  ASSERT_EQ(ring.size(), 4u);
  // The survivors are the last four events, oldest first.
  EXPECT_EQ(ring.front().fields.at(0).i, 6);
  EXPECT_EQ(ring.back().fields.at(0).i, 9);
  EXPECT_EQ(log.recorded(), 10u);

  log.set_ring_capacity(0);  // disables the ring entirely
  log.log(obs::LogLevel::kInfo, "tick", {});
  EXPECT_TRUE(log.ring().empty());
}

TEST(EventLog, DumpRingReplaysBelowThresholdEvents) {
  obs::EventLog log;
  log.set_min_level(obs::LogLevel::kError);  // sink would drop everything
  log.log(obs::LogLevel::kDebug, "exec.step", {{"step", 1}});
  log.log(obs::LogLevel::kInfo, "exec.step", {{"step", 2}});

  std::ostringstream os;
  log.dump_ring(os);
  const std::vector<std::string> dumped = lines_of(os.str());
  ASSERT_EQ(dumped.size(), 2u);
  for (const std::string& line : dumped) {
    std::string error;
    EXPECT_TRUE(obs::json_parse_check(line, &error)) << error;
    EXPECT_EQ(obs::json_parse(line).at("schema").as_string(),
              obs::kEventsSchema);
  }
  // The flight dump carries the debug event the sink never saw.
  EXPECT_NE(dumped[0].find("\"debug\""), std::string::npos);
}

TEST(EventLog, DumpRingToWritesFileAndReportsFailure) {
  obs::EventLog log;
  log.log(obs::LogLevel::kInfo, "before.crash", {});
  const std::string path = "event_log_flight_test.jsonl";
  ASSERT_TRUE(log.dump_ring_to(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"before.crash\""), std::string::npos);
  in.close();
  std::remove(path.c_str());

  EXPECT_FALSE(log.dump_ring_to("/nonexistent_dir_cts_test/flight.jsonl"));
}

TEST(EventLog, FileSinkAppendsAndOpenFailureThrows) {
  const std::string path = "event_log_sink_test.jsonl";
  std::remove(path.c_str());
  {
    obs::EventLog log;
    log.open(path);
    log.log(obs::LogLevel::kInfo, "first", {});
  }
  {
    obs::EventLog log;
    log.open(path);  // append: the first line must survive
    log.log(obs::LogLevel::kInfo, "second", {});
  }
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::vector<std::string> written = lines_of(text);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_NE(written[0].find("\"first\""), std::string::npos);
  EXPECT_NE(written[1].find("\"second\""), std::string::npos);
  std::remove(path.c_str());

  obs::EventLog bad;
  EXPECT_THROW(bad.open("/nonexistent_dir_cts_test/events.jsonl"),
               cts::util::InvalidArgument);
}

// The ring buffer is the flight recorder: daemons log from the accept
// loop, every job thread, and the stats path at once.  Hammer it from
// several writers (with concurrent ring() readers and a mid-flight
// capacity change) and require a consistent final state — no lost
// records, no torn events, capacity respected.  Run under TSan in CI,
// this is also the data-race check for the EventLog locking.
TEST(EventLog, RingIsConsistentUnderConcurrentWriters) {
  obs::EventLog log;
  log.set_min_level(obs::LogLevel::kError);  // sink stays quiet
  log.set_ring_capacity(256);

  constexpr int kWriters = 8;
  constexpr int kEventsPerWriter = 2000;
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&log, w] {
      for (int i = 0; i < kEventsPerWriter; ++i) {
        log.log(obs::LogLevel::kDebug, "writer." + std::to_string(w),
                {{"i", i}, {"w", w}});
      }
    });
  }
  // Concurrent readers: ring() snapshots and one capacity change must not
  // tear while writers are active.
  std::thread reader([&log, &stop_readers] {
    while (!stop_readers.load()) {
      const std::vector<obs::LogEvent> snapshot = log.ring();
      EXPECT_LE(snapshot.size(), 256u);
      for (const obs::LogEvent& e : snapshot) {
        EXPECT_EQ(e.event.rfind("writer.", 0), 0u) << e.event;
        ASSERT_EQ(e.fields.size(), 2u);
      }
    }
  });
  log.set_ring_capacity(256);  // exercised concurrently with writers
  for (std::thread& t : threads) t.join();
  stop_readers.store(true);
  reader.join();

  EXPECT_EQ(log.recorded(),
            static_cast<std::uint64_t>(kWriters) * kEventsPerWriter);
  const std::vector<obs::LogEvent> ring = log.ring();
  ASSERT_EQ(ring.size(), 256u);
  // Every survivor is a well-formed event from some writer, and the dump
  // still renders strict JSONL.
  std::ostringstream os;
  log.dump_ring(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t dumped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    ASSERT_TRUE(obs::json_parse_check(line, &error)) << error;
    ++dumped;
  }
  EXPECT_EQ(dumped, 256u);
}

}  // namespace
