// Cross-process trace merging: the NTP-style offset estimate must recover
// a known clock skew (exactly, under symmetric delays), the merged Chrome
// trace must carry one named process lane per participant with
// offset-shifted timestamps, and the TraceEvent wire form must round-trip.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cts/obs/json.hpp"
#include "cts/obs/trace_merge.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

TEST(ClockOffset, RecoversSkewUnderSymmetricDelay) {
  // Worker clock = dispatcher clock + 5000us; 200us each way on the wire;
  // the worker holds the job for 30000us.
  const std::int64_t offset = 5000;
  const std::int64_t t0 = 1'000'000;
  const std::int64_t t1 = t0 + 200 + offset;
  const std::int64_t t2 = t1 + 30'000;
  const std::int64_t t3 = t0 + 200 + 30'000 + 200;
  EXPECT_EQ(obs::estimate_clock_offset_us(t0, t1, t2, t3), offset);
}

TEST(ClockOffset, AsymmetryErrorIsBoundedByHalfRtt) {
  // All 400us of delay on the forward path: the estimate is off by
  // exactly half the RTT — the documented worst case.
  const std::int64_t offset = -7000;
  const std::int64_t t0 = 50'000;
  const std::int64_t t1 = t0 + 400 + offset;
  const std::int64_t t2 = t1 + 1'000;
  const std::int64_t t3 = t0 + 400 + 1'000;
  const std::int64_t estimated = obs::estimate_clock_offset_us(t0, t1, t2, t3);
  EXPECT_LE(std::abs(estimated - offset), 200);
}

TEST(ClockOffset, ZeroWhenClocksAgree) {
  EXPECT_EQ(obs::estimate_clock_offset_us(100, 150, 250, 300), 0);
}

TEST(TraceMerge, WritesOneNamedLanePerProcessWithShiftedTimestamps) {
  std::vector<obs::ProcessTrace> lanes;
  lanes.push_back({"dispatcher", 1, 0, {{"simd.net.job", 0, 1000, 500}}});
  lanes.push_back({"worker a", 2, 300, {{"shardd.exec", 0, 1400, 200}}});
  lanes.push_back({"worker b", 3, 0, {}});  // idle lane still gets a name

  std::ostringstream os;
  obs::write_merged_trace_json(os, lanes);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(os.str(), &error)) << error << os.str();
  const obs::JsonValue doc = obs::json_parse(os.str());
  const obs::JsonValue& events = doc.at("traceEvents");

  // 3 process_name metadata events + 2 span events.
  ASSERT_EQ(events.size(), 5u);
  std::size_t metadata = 0;
  bool saw_shifted_worker_span = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JsonValue& e = events.at(i);
    if (e.at("ph").as_string() == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "process_name");
      continue;
    }
    EXPECT_EQ(e.at("ph").as_string(), "X");
    if (e.at("name").as_string() == "shardd.exec") {
      // Lane offset 300 subtracted: 1400 -> 1100.
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 1100.0);
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 2.0);
      saw_shifted_worker_span = true;
    }
  }
  EXPECT_EQ(metadata, 3u);
  EXPECT_TRUE(saw_shifted_worker_span);
}

TEST(TraceMerge, WriteFailsGracefullyOnBadPath) {
  EXPECT_FALSE(
      obs::write_merged_trace("/nonexistent_dir_cts_test/trace.json", {}));
}

TEST(TraceEventsWire, RoundTripsThroughJson) {
  const std::vector<obs::TraceEvent> events = {
      {"shardd.job", 0, 120, 4000},
      {"shardd.exec", 1, 150, 3800},
  };
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    obs::write_trace_events(w, events);
  }
  const std::vector<obs::TraceEvent> back =
      obs::trace_events_from_json(obs::json_parse(os.str()));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "shardd.job");
  EXPECT_EQ(back[0].tid, 0);
  EXPECT_EQ(back[0].ts_us, 120);
  EXPECT_EQ(back[0].dur_us, 4000);
  EXPECT_EQ(back[1].name, "shardd.exec");
}

TEST(TraceEventsWire, RejectsMalformedDocuments) {
  const auto parse = [](const std::string& text) {
    return obs::trace_events_from_json(obs::json_parse(text));
  };
  EXPECT_THROW(parse("{}"), cts::util::InvalidArgument);
  EXPECT_THROW(parse("[42]"), cts::util::InvalidArgument);
  EXPECT_THROW(parse(R"([{"tid":0,"ts_us":0,"dur_us":1}])"),
               cts::util::InvalidArgument);  // missing name
  EXPECT_THROW(parse(R"([{"name":"x","tid":0,"ts_us":0,"dur_us":-1}])"),
               cts::util::InvalidArgument);  // negative duration
}

}  // namespace
