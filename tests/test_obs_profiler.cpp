#include "cts/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "cts/obs/json.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

// The profiler global is process-wide state; serialize tests through a
// fixture that always leaves it stopped and empty.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Profiler::global().stop();
    obs::Profiler::global().reset();
    obs::TraceRecorder::global().disable();
    obs::TraceRecorder::global().reset();
  }
};

void spin_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + 1e-9;
  }
}

TEST_F(ProfilerTest, RejectsBadOptions) {
  obs::Profiler::Options opts;
  opts.hz = 0;
  EXPECT_THROW(obs::Profiler::global().start(opts),
               cts::util::InvalidArgument);
  opts.hz = 100;
  opts.backend = "quantum";
  EXPECT_THROW(obs::Profiler::global().start(opts),
               cts::util::InvalidArgument);
}

TEST_F(ProfilerTest, RejectsDoubleStart) {
  obs::Profiler& prof = obs::Profiler::global();
  prof.start({});
  EXPECT_THROW(prof.start({}), cts::util::InvalidArgument);
  prof.stop();
}

TEST_F(ProfilerTest, DisarmedSpansCostNothingAndCollectNothing) {
  {
    CTS_TRACE_SPAN("never.sampled");
    spin_ms(5);
  }
  EXPECT_TRUE(obs::Profiler::global().folded().empty());
  EXPECT_EQ(obs::Profiler::global().sample_count(), 0u);
}

// Wall-clock backend: nested spans on two threads must show up as folded
// stacks with parent;child chains.
TEST_F(ProfilerTest, ThreadBackendCapturesNestedStacksAcrossThreads) {
  obs::Profiler& prof = obs::Profiler::global();
  obs::Profiler::Options opts;
  opts.hz = 997;  // fast tick so 150 ms of work yields plenty of samples
  prof.start(opts);
  ASSERT_TRUE(prof.armed());

  std::thread worker([] {
    obs::ScopedSpan outer(std::string("worker.outer"));
    spin_ms(50);
    {
      obs::ScopedSpan inner(std::string("worker.inner"));
      spin_ms(100);
    }
  });
  {
    obs::ScopedSpan main_span(std::string("main.work"));
    spin_ms(150);
  }
  worker.join();
  prof.stop();
  EXPECT_FALSE(prof.armed());

  const auto folded = prof.folded();
  EXPECT_GT(prof.sample_count(), 10u);
  EXPECT_GT(folded.count("main.work"), 0u);
  EXPECT_GT(folded.count("worker.outer;worker.inner"), 0u);
  // The pure outer frame was live for ~50 ms; at ~1 kHz it must appear.
  EXPECT_GT(folded.count("worker.outer"), 0u);
}

TEST_F(ProfilerTest, StopMidSpanStaysBalanced) {
  obs::Profiler& prof = obs::Profiler::global();
  {
    obs::Profiler::Options opts;
    opts.hz = 500;
    prof.start(opts);
    obs::ScopedSpan span(std::string("half.open"));
    spin_ms(20);
    prof.stop();
    // Span destructs after stop: pop must not crash or underflow.
  }
  prof.reset();
  // A fresh profiling session still sees a clean stack.
  prof.start({});
  {
    obs::ScopedSpan span(std::string("fresh.span"));
    spin_ms(30);
  }
  prof.stop();
  for (const auto& [stack, count] : prof.folded()) {
    (void)count;
    EXPECT_EQ(stack.find("half.open"), std::string::npos) << stack;
  }
}

TEST_F(ProfilerTest, FoldedTextAndJsonExports) {
  obs::Profiler& prof = obs::Profiler::global();
  obs::Profiler::Options opts;
  opts.hz = 997;
  prof.start(opts);
  {
    obs::ScopedSpan span(std::string("export.work"));
    spin_ms(60);
  }
  prof.stop();

  std::ostringstream folded;
  prof.write_folded(folded);
  EXPECT_NE(folded.str().find("export.work "), std::string::npos);

  std::ostringstream json;
  prof.write_json(json);
  const obs::JsonValue doc = obs::json_parse(json.str());
  EXPECT_EQ(doc.at("schema").as_string(), "cts.profile.v1");
  EXPECT_EQ(doc.at("backend").as_string(), "thread");
  EXPECT_EQ(doc.at("hz").as_number(), 997.0);
  EXPECT_GT(doc.at("samples").as_number(), 0.0);
  bool found = false;
  for (const obs::JsonValue& entry : doc.at("stacks").items) {
    if (entry.at("stack").as_string() == "export.work") {
      EXPECT_GT(entry.at("count").as_number(), 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found) << json.str();
}

// CPU backend: SIGPROF ticks only while burning CPU inside the span.
TEST_F(ProfilerTest, ItimerBackendSamplesCpuWork) {
  obs::Profiler& prof = obs::Profiler::global();
  obs::Profiler::Options opts;
  opts.backend = "itimer";
  opts.hz = 250;
  prof.start(opts);
  {
    obs::ScopedSpan span(std::string("cpu.burn"));
    spin_ms(400);  // ~100 expected ITIMER_PROF ticks at 250 Hz
  }
  prof.stop();
  EXPECT_GT(prof.sample_count(), 0u);
  const auto folded = prof.folded();
  EXPECT_GT(folded.count("cpu.burn"), 0u)
      << "samples=" << prof.sample_count();

  std::ostringstream json;
  prof.write_json(json);
  EXPECT_EQ(obs::json_parse(json.str()).at("backend").as_string(), "itimer");
}

TEST_F(ProfilerTest, ProfilesWorkWithoutTracingEnabled) {
  ASSERT_FALSE(obs::TraceRecorder::global().enabled());
  obs::Profiler& prof = obs::Profiler::global();
  obs::Profiler::Options opts;
  opts.hz = 997;
  prof.start(opts);
  {
    CTS_TRACE_SPAN("untraced.span");
    spin_ms(50);
  }
  prof.stop();
  EXPECT_GT(prof.folded().count("untraced.span"), 0u);
  // And no trace events were recorded (recorder stayed disabled).
  EXPECT_EQ(obs::TraceRecorder::global().event_count(), 0u);
}

}  // namespace
