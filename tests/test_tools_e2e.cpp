// End-to-end harness tests: cts_benchd must produce a cts.bench.v1 document
// that carries median/MAD/CI, peak RSS, CPU time and a per-phase self-time
// table for every smoke bench; cts_benchcmp must exit 0 on an identical
// pair, 1 on a perturbed candidate, and validate files against the strict
// RFC 8259 parser; and every bench binary must honour --help with exit 0.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "cts/obs/json.hpp"

namespace obs = cts::obs;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR) && defined(CTS_BENCH_BIN_DIR)

std::string benchd() { return std::string(CTS_TOOLS_BIN_DIR) + "/cts_benchd"; }
std::string benchcmp() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_benchcmp";
}

/// A minimal cts.bench.v1 document for cts_benchcmp tests.
std::string mini_bench_doc(double wall_median) {
  std::ostringstream os;
  os << R"({"schema":"cts.bench.v1","benches":{"fig9_sim_markov":{"metrics":{)"
     << R"("wall_s":{"median":)" << wall_median << R"(,"mad":0.01}}}}})";
  return os.str();
}

TEST(CtsBenchd, SmokeSuiteProducesValidBenchDocument) {
  const std::string out = ::testing::TempDir() + "/BENCH_e2e.json";
  const std::string cmd = "'" + benchd() +
                          "' --suite=smoke --repeats=2 --warmup=0 --reps=1 "
                          "--frames=400 --quiet --bench-dir='" +
                          CTS_BENCH_BIN_DIR + "' --out='" + out + "'";
  ASSERT_EQ(shell(cmd), 0) << cmd;

  const std::string text = read_file(out);
  ASSERT_FALSE(text.empty());
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error;

  const obs::JsonValue doc = obs::json_parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "cts.bench.v1");
  EXPECT_DOUBLE_EQ(doc.at("repeats").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("scale").at("repro_frames").as_number(), 400.0);
  EXPECT_GT(doc.at("host").at("hardware_concurrency").as_number(), 0.0);

  const obs::JsonValue& benches = doc.at("benches");
  ASSERT_GE(benches.size(), 3u);
  for (const auto& [id, b] : benches.members) {
    SCOPED_TRACE(id);
    EXPECT_DOUBLE_EQ(b.at("runs").as_number(), 2.0);
    const obs::JsonValue& metrics = b.at("metrics");
    for (const char* name : {"wall_s", "user_s", "sys_s", "max_rss_kb"}) {
      const obs::JsonValue& m = metrics.at(name);
      EXPECT_DOUBLE_EQ(m.at("n").as_number(), 2.0);
      EXPECT_GE(m.at("median").as_number(), 0.0);
      EXPECT_GE(m.at("mad").as_number(), 0.0);
      EXPECT_LE(m.at("ci95_lo").as_number(), m.at("ci95_hi").as_number());
      EXPECT_EQ(m.at("samples").size(), 2u);
    }
    EXPECT_GT(metrics.at("wall_s").at("median").as_number(), 0.0);
    EXPECT_GT(metrics.at("max_rss_kb").at("median").as_number(), 0.0);
    // Hardware counters either aggregated or degraded with a reason.  The
    // perf_event backend carries full counters; the portable tsc fallback
    // reports only a cycle tick, so assertions branch on the backend name.
    const obs::JsonValue& hw = b.at("hw");
    if (hw.at("available").as_bool()) {
      EXPECT_NE(hw.at("counters").find("cycles"), nullptr);
      if (hw.at("backend").as_string() == "perf_event") {
        EXPECT_NE(hw.at("counters").find("instructions"), nullptr);
      } else {
        EXPECT_EQ(hw.at("backend").as_string(), "tsc");
      }
    } else {
      EXPECT_FALSE(hw.at("reason").as_string().empty());
    }
    // Every bench has at least the "bench" root phase.
    const obs::JsonValue& phases = b.at("phases");
    ASSERT_GE(phases.size(), 1u);
    double share_sum = 0.0;
    for (const obs::JsonValue& phase : phases.items) {
      EXPECT_FALSE(phase.at("phase").as_string().empty());
      EXPECT_GE(phase.at("self_us_median").as_number(), 0.0);
      share_sum += phase.at("self_share").as_number();
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-6);
  }

  // An identical pair never regresses.
  EXPECT_EQ(shell("'" + benchcmp() + "' '" + out + "' '" + out + "' --quiet"),
            0);
  // The emitted document passes --validate.
  EXPECT_EQ(shell("'" + benchcmp() + "' --validate='" + out + "' --quiet"), 0);
}

TEST(CtsBenchcmp, FlagsPerturbedCandidateAsRegression) {
  const std::string base = ::testing::TempDir() + "/bench_base.json";
  const std::string worse = ::testing::TempDir() + "/bench_worse.json";
  write_file(base, mini_bench_doc(1.0));
  write_file(worse, mini_bench_doc(1.5));  // +50%, far beyond 3 x MAD and 5%
  EXPECT_EQ(shell("'" + benchcmp() + "' '" + base + "' '" + base +
                  "' --quiet"),
            0);
  EXPECT_EQ(shell("'" + benchcmp() + "' '" + base + "' '" + worse +
                  "' --quiet"),
            1);
  // The improvement direction never fails.
  EXPECT_EQ(shell("'" + benchcmp() + "' '" + worse + "' '" + base +
                  "' --quiet"),
            0);
}

TEST(CtsBenchcmp, ValidateRejectsMalformedJson) {
  const std::string good = ::testing::TempDir() + "/validate_good.json";
  const std::string bad = ::testing::TempDir() + "/validate_bad.json";
  write_file(good, mini_bench_doc(1.0));
  write_file(bad, "{\"schema\":\"cts.bench.v1\",}");
  EXPECT_EQ(shell("'" + benchcmp() + "' --validate='" + good + "' --quiet"),
            0);
  EXPECT_EQ(
      shell("'" + benchcmp() + "' --validate='" + bad + "' --quiet 2>/dev/null"),
      2);
  EXPECT_EQ(shell("'" + benchcmp() + "' --validate='/no/such/file.json' "
                  "--quiet 2>/dev/null"),
            2);
}

TEST(CtsBenchcmp, UsageErrorsExitTwo) {
  EXPECT_EQ(shell("'" + benchcmp() + "' 2>/dev/null >/dev/null"), 2);
  EXPECT_EQ(shell("'" + benchcmp() + "' --help >/dev/null"), 0);
}

TEST(CtsBenchcmp, ValidateRejectsMissingAndUnknownSchema) {
  // Valid JSON is not enough: a schema-less or foreign document must be
  // rejected so a stray file can never pass as a perf baseline.
  const std::string no_schema = ::testing::TempDir() + "/validate_noschema.json";
  const std::string wrong = ::testing::TempDir() + "/validate_wrong.json";
  write_file(no_schema, R"({"benches":{}})");
  write_file(wrong, R"({"schema":"cts.perf.v1","benches":{}})");
  EXPECT_EQ(shell("'" + benchcmp() + "' --validate='" + no_schema +
                  "' --quiet 2>/dev/null"),
            2);
  EXPECT_EQ(shell("'" + benchcmp() + "' --validate='" + wrong +
                  "' --quiet 2>/dev/null"),
            2);
}

TEST(CtsBenchd, CompareModeGatesInOneInvocation) {
  // One-shot run-and-gate: the exit code must match what a separate
  // cts_benchcmp invocation would produce against the same baseline.
  const std::string dir = ::testing::TempDir();
  const std::string fast = dir + "/compare_fast_base.json";   // unbeatable
  const std::string slow = dir + "/compare_slow_base.json";   // unloseable
  const auto fig5_doc = [](double wall_median) {
    std::ostringstream os;
    os << R"({"schema":"cts.bench.v1","benches":{"fig5_bop":{"metrics":{)"
       << R"("wall_s":{"median":)" << wall_median << R"(,"mad":1e-9}}}}})";
    return os.str();
  };
  write_file(fast, fig5_doc(1e-9));   // any real run regresses vs this
  write_file(slow, fig5_doc(1000.0));  // any real run improves vs this
  const std::string run = "'" + benchd() +
                          "' --suite=analytic --filter=fig5 --repeats=2 "
                          "--warmup=0 --quiet --bench-dir='" +
                          CTS_BENCH_BIN_DIR + "' --out='" + dir +
                          "/compare_out.json'";
  EXPECT_EQ(shell(run + " --compare='" + slow + "' >/dev/null 2>/dev/null"), 0);
  EXPECT_EQ(shell(run + " --compare='" + fast + "' >/dev/null 2>/dev/null"), 1);
  // A missing baseline is a usage error, not a regression.
  EXPECT_EQ(shell(run + " --compare='/no/such/BENCH.json' "
                        ">/dev/null 2>/dev/null"),
            2);
}

TEST(CtsBenchd, JsonLinesStreamsOneObjectPerRun) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/runs.jsonl";
  const std::string cmd = "'" + benchd() +
                          "' --suite=analytic --filter=fig5 --repeats=2 "
                          "--warmup=1 --quiet --bench-dir='" +
                          CTS_BENCH_BIN_DIR + "' --out='" + dir +
                          "/jsonl_out.json' --json-lines='" + jsonl + "'";
  ASSERT_EQ(shell(cmd), 0) << cmd;

  std::ifstream in(jsonl);
  std::string line;
  int lines = 0;
  int warmups = 0;
  while (std::getline(in, line)) {
    SCOPED_TRACE(line);
    ASSERT_FALSE(line.empty());
    std::string error;
    // Each line must be a complete RFC 8259 document on its own.
    ASSERT_TRUE(obs::json_parse_check(line, &error)) << error;
    const obs::JsonValue run = obs::json_parse(line);
    EXPECT_EQ(run.at("schema").as_string(), "cts.benchrun.v1");
    EXPECT_EQ(run.at("bench").as_string(), "fig5_bop");
    EXPECT_GT(run.at("wall_s").as_number(), 0.0);
    if (run.at("warmup").as_bool()) ++warmups;
    ++lines;
  }
  EXPECT_EQ(lines, 3);  // 1 warmup + 2 measured
  EXPECT_EQ(warmups, 1);
}

TEST(CtsBenchd, AnalyticBenchPhasesCarryNamedSpans) {
  // The analytic benches must attribute their inner loops (rate-function
  // scans, curve evaluations) to named phases, not just the "bench" root.
  const std::string out = ::testing::TempDir() + "/analytic_phases.json";
  const std::string cmd = "'" + benchd() +
                          "' --suite=analytic --filter=fig5 --repeats=2 "
                          "--warmup=0 --quiet --bench-dir='" +
                          CTS_BENCH_BIN_DIR + "' --out='" + out + "'";
  ASSERT_EQ(shell(cmd), 0) << cmd;
  const obs::JsonValue doc = obs::json_parse(read_file(out));
  const obs::JsonValue& phases = doc.at("benches").at("fig5_bop").at("phases");
  ASSERT_GE(phases.size(), 2u);
  bool saw_rate_fn = false;
  for (const obs::JsonValue& phase : phases.items) {
    if (phase.at("phase").as_string() == "rate_fn") saw_rate_fn = true;
  }
  EXPECT_TRUE(saw_rate_fn);
}

TEST(CtsBenchd, ListAndUsageModes) {
  const std::string list = ::testing::TempDir() + "/benchd_list.txt";
  ASSERT_EQ(shell("'" + benchd() + "' --list > '" + list + "'"), 0);
  const std::string text = read_file(list);
  EXPECT_NE(text.find("fig9_sim_markov"), std::string::npos);
  EXPECT_NE(text.find("table1"), std::string::npos);
  EXPECT_EQ(shell("'" + benchd() + "' --suite=bogus 2>/dev/null >/dev/null"),
            2);
}

TEST(BenchBinaries, HelpPrintsFlagListAndExitsZero) {
  const std::string out = ::testing::TempDir() + "/bench_help.txt";
  const std::string bench = std::string(CTS_BENCH_BIN_DIR) + "/bench_table1";
  ASSERT_EQ(shell("'" + bench + "' --help > '" + out + "'"), 0);
  const std::string text = read_file(out);
  EXPECT_NE(text.find("--metrics"), std::string::npos);
  EXPECT_NE(text.find("--perf"), std::string::npos);
  EXPECT_NE(text.find("--trace"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);
}

#else

TEST(ToolsE2e, DISABLED_ToolsNotBuilt) {}

#endif  // CTS_TOOLS_BIN_DIR && CTS_BENCH_BIN_DIR

}  // namespace
