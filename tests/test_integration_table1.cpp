// Integration test: regenerate Table 1 of the paper from our fitting code
// and compare against the published parameter values.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"

namespace cf = cts::fit;

TEST(Table1, VvRows) {
  // | v    | alpha | a        | lambda | T0 (ms) | M  |
  // | 0.67 | 0.9   | ~0.8     | ~5000  | 3.48    | 15 |
  // | 1    | 0.9   | 0.8      | 6250   | 3.48    | 15 |
  // | 1.5  | 0.9   | ~0.8     | ~7500  | 3.48    | 15 |
  struct Row {
    double v;
    double lambda;
    double lambda_tol;
  };
  for (const Row row : {Row{0.67, 5000.0, 30.0}, Row{1.0, 6250.0, 1.0},
                        Row{1.5, 7500.0, 10.0}}) {
    const cf::MixtureReport r = cf::report_vv(row.v);
    EXPECT_DOUBLE_EQ(r.alpha, 0.9) << "v=" << row.v;
    EXPECT_NEAR(r.lambda, row.lambda, row.lambda_tol) << "v=" << row.v;
    EXPECT_NEAR(r.t0_msec, 3.48, 0.01) << "v=" << row.v;
    EXPECT_EQ(r.M, 15u) << "v=" << row.v;
    EXPECT_NEAR(r.a, 0.8, 0.02) << "v=" << row.v;
  }
  // The anchor row is exact.
  EXPECT_NEAR(cf::report_vv(1.0).a, 0.8, 1e-12);
}

TEST(Table1, ZaRow) {
  // | Z^a | v=1 | alpha=0.8 | a in {0.7,...,0.99} | 6250 | 2.57 | 15 |
  for (const double a : {0.7, 0.9, 0.975, 0.99}) {
    const cf::MixtureReport r = cf::report_za(a);
    EXPECT_DOUBLE_EQ(r.v, 1.0);
    EXPECT_DOUBLE_EQ(r.alpha, 0.8);
    EXPECT_DOUBLE_EQ(r.a, a);
    EXPECT_NEAR(r.lambda, 6250.0, 1e-9);
    EXPECT_NEAR(r.t0_msec, 2.57, 0.01);
    EXPECT_EQ(r.M, 15u);
  }
}

TEST(Table1, LRow) {
  // | L | alpha ~ 0.72 | lambda = 12500 | T0 ~ 1.83 | M = 30 |
  const cf::MixtureReport r = cf::report_l();
  EXPECT_NEAR(r.alpha, 0.72, 0.04);
  EXPECT_NEAR(r.lambda, 12500.0, 1e-9);
  EXPECT_NEAR(r.t0_msec, 1.83, 0.25);
  EXPECT_EQ(r.M, 30u);
}

// Note on column order: the Table-1 S block lists one column per Z^a case.
// Matching the analytic lag-1 correlations (r_Z(1) = 0.683 for a = 0.7,
// 0.821 for a = 0.975) identifies the columns unambiguously: the
// rho = 0.68/0.72/0.73 column is Z^0.7 and the rho = 0.82/0.87/0.89 column
// is Z^0.975.

TEST(Table1, SRowsForZ07) {
  // Z^0.7 -> DAR(1): rho=0.68; DAR(2): rho=0.72, a=(0.84,0.16);
  //          DAR(3): rho=0.73, a=(0.82,0.10,0.08).
  const cf::DarFit d1 = cf::report_dar_fit(0.7, 1);
  EXPECT_NEAR(d1.rho, 0.68, 0.02);

  const cf::DarFit d2 = cf::report_dar_fit(0.7, 2);
  EXPECT_NEAR(d2.rho, 0.72, 0.02);
  EXPECT_NEAR(d2.lag_probs[0], 0.84, 0.06);
  EXPECT_NEAR(d2.lag_probs[1], 0.16, 0.06);

  const cf::DarFit d3 = cf::report_dar_fit(0.7, 3);
  EXPECT_NEAR(d3.rho, 0.73, 0.03);
  EXPECT_NEAR(d3.lag_probs[0], 0.82, 0.08);
}

TEST(Table1, SRowsForZ0975) {
  // Z^0.975 -> DAR(1): rho=0.82; DAR(2): rho=0.87, a=(0.70,0.3);
  //            DAR(3): rho=0.89, a=(0.63,0.18,0.19).
  const cf::DarFit d1 = cf::report_dar_fit(0.975, 1);
  EXPECT_NEAR(d1.rho, 0.82, 0.02);

  const cf::DarFit d2 = cf::report_dar_fit(0.975, 2);
  EXPECT_NEAR(d2.rho, 0.87, 0.02);
  EXPECT_NEAR(d2.lag_probs[0], 0.70, 0.06);
  EXPECT_NEAR(d2.lag_probs[1], 0.30, 0.06);

  const cf::DarFit d3 = cf::report_dar_fit(0.975, 3);
  EXPECT_NEAR(d3.rho, 0.89, 0.02);
  EXPECT_NEAR(d3.lag_probs[0], 0.63, 0.08);
}

TEST(Table1, AllFitsAreExactAtTheirOrder) {
  for (const double a : {0.7, 0.975}) {
    for (const std::size_t p : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      EXPECT_LT(cf::report_dar_fit(a, p).residual, 1e-9)
          << "a=" << a << " p=" << p;
    }
  }
}
