// End-to-end tests for tools/cts_scenariod against the COMMITTED example
// specs: check mode, a reduced-scale run of the tandem spec, the 2-shard
// merge byte-identity guarantee (cmp-equal files, the same diff CI runs),
// cts_obstop --validate on every emitted artifact, the ATM shaping
// metrics in the --metrics run report, and structured exit-2 errors.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "cts/util/file.hpp"

namespace cu = cts::util;

namespace {

int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR) && defined(CTS_EXAMPLES_DIR)

std::string scenariod() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_scenariod";
}

std::string obstop() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_obstop";
}

std::string spec(const std::string& name) {
  return std::string(CTS_EXAMPLES_DIR) + "/" + name;
}

std::string tmp(const std::string& name) {
  return ::testing::TempDir() + "/scenariod_" + name;
}

/// Runs cts_scenariod with `args`, captures stdout+stderr into *out.
int run_tool(const std::string& args, std::string* out) {
  const std::string path = tmp("out.txt");
  const int rc = shell("'" + scenariod() + "' " + args + " >'" + path +
                       "' 2>&1");
  *out = cu::read_text_file(path);
  return rc;
}

// Reduced scale shared by the run tests: fast, but large enough that the
// tandem spec exercises every hop.
const char* kScale = "--reps=2 --frames=300 --warmup=50 --quiet";

TEST(ScenariodE2e, CheckModeAcceptsEveryCommittedSpec) {
  for (const char* name :
       {"paper_baseline.scn", "tandem_3hop.scn", "priority_two_class.scn",
        "policed_smoothed.scn", "heterogeneous_mix.scn"}) {
    std::string out;
    EXPECT_EQ(run_tool("check '" + spec(name) + "'", &out), 0) << out;
    EXPECT_NE(out.find("ok: scenario"), std::string::npos) << out;
  }
}

TEST(ScenariodE2e, TandemRunsEndToEndAndTwoShardMergeIsByteIdentical) {
  const std::string tandem = spec("tandem_3hop.scn");
  const std::string single = tmp("single.json");
  const std::string trace = tmp("trace.json");
  std::string out;

  ASSERT_EQ(run_tool("run '" + tandem + "' " + kScale + " --out='" +
                         single + "' --hop-trace='" + trace + "'",
                     &out),
            0)
      << out;
  EXPECT_NE(out.find("hop edge"), std::string::npos) << out;
  EXPECT_NE(out.find("hop core"), std::string::npos) << out;

  const std::string p0 = tmp("p0.json");
  const std::string p1 = tmp("p1.json");
  ASSERT_EQ(run_tool("run '" + tandem + "' " + kScale +
                         " --shard=0/2 --out='" + p0 + "'",
                     &out),
            0)
      << out;
  ASSERT_EQ(run_tool("run '" + tandem + "' " + kScale +
                         " --shard=1/2 --out='" + p1 + "'",
                     &out),
            0)
      << out;

  const std::string merged = tmp("merged.json");
  ASSERT_EQ(run_tool("merge '" + p0 + "' '" + p1 + "' --out='" + merged +
                         "'",
                     &out),
            0)
      << out;
  // The headline guarantee: cmp-equal, not just numerically close.
  EXPECT_EQ(cu::read_text_file(merged), cu::read_text_file(single));

  // Every artifact passes the strict validator.
  EXPECT_EQ(shell("'" + obstop() + "' --validate '" + single + "' '" +
                  trace + "' '" + p0 + "' '" + p1 + "' '" + merged +
                  "' > /dev/null 2>&1"),
            0);
}

TEST(ScenariodE2e, MetricsReportCarriesAtmShapingMetrics) {
  const std::string metrics = tmp("metrics.json");
  std::string out;
  ASSERT_EQ(run_tool("run '" + spec("policed_smoothed.scn") + "' " + kScale +
                         " --out='" + tmp("ps.json") + "' --metrics='" +
                         metrics + "'",
                     &out),
            0)
      << out;
  const std::string report = cu::read_text_file(metrics);
  for (const char* metric :
       {"atm.smoothing.frames", "atm.smoothing.cells_in", "atm.gcra.cells",
        "atm.gcra.nonconforming", "atm.aal5.pdus", "atm.aal5.cells",
        "scenario.replications", "scenario.arrived_cells"}) {
    EXPECT_NE(report.find(metric), std::string::npos)
        << "--metrics report is missing " << metric;
  }
}

TEST(ScenariodE2e, BadSpecExitsTwoNamingLineAndKey) {
  const std::string bad = tmp("bad.scn");
  {
    std::ofstream out(bad);
    out << "cts.scenario.v1\n[source s]\nmodel = white\n[hop m]\n"
           "input = s\ncapacity = 600\nbufer = 100\n";
    ASSERT_TRUE(out.good());
  }
  std::string out;
  EXPECT_EQ(run_tool("check '" + bad + "'", &out), 2);
  EXPECT_NE(out.find("line 7"), std::string::npos) << out;
  EXPECT_NE(out.find("bufer"), std::string::npos) << out;
  EXPECT_NE(out.find("buffer"), std::string::npos) << out;  // suggestion
}

TEST(ScenariodE2e, IncompleteMergeExitsTwo) {
  const std::string p0 = tmp("lonely.json");
  std::string out;
  ASSERT_EQ(run_tool("run '" + spec("tandem_3hop.scn") + "' " + kScale +
                         " --shard=0/2 --out='" + p0 + "'",
                     &out),
            0)
      << out;
  EXPECT_EQ(run_tool("merge '" + p0 + "' --out='" + tmp("nope.json") + "'",
                     &out),
            2);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST(ScenariodE2e, UnknownModeAndMissingSpecExitTwo) {
  std::string out;
  EXPECT_EQ(run_tool("frobnicate", &out), 2);
  EXPECT_NE(out.find("unknown mode"), std::string::npos) << out;
  EXPECT_EQ(run_tool("check '" + tmp("does_not_exist.scn") + "'", &out), 2);
}

#else
TEST(ScenariodE2e, DISABLED_NeedsToolAndExamplesDirs) {}
#endif

}  // namespace
