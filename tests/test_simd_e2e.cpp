// End-to-end test for the cts_simd shard orchestrator: a 2-shard run of a
// real simulation bench must produce CLR/BOP point estimates and
// replication CIs bit-identical to a single-process run at the same master
// seed and scale (checked in-process on the parsed shard files, not by
// eye), and its merged metrics report must pass `cts_simd diff` against
// the single-process report.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "cts/obs/json.hpp"
#include "cts/sim/shard.hpp"

namespace obs = cts::obs;
namespace sim = cts::sim;

namespace {

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR) && defined(CTS_BENCH_BIN_DIR)

const char* kScale = "REPRO_REPS=3 REPRO_FRAMES=500 ";

std::string simd() { return std::string(CTS_TOOLS_BIN_DIR) + "/cts_simd"; }
std::string bench() {
  return std::string(CTS_BENCH_BIN_DIR) + "/bench_fig9_sim_markov";
}

void expect_results_bit_identical(const sim::MergedShards& a,
                                  const sim::MergedShards& b) {
  ASSERT_EQ(a.experiments.size(), b.experiments.size());
  for (std::size_t e = 0; e < a.experiments.size(); ++e) {
    SCOPED_TRACE(a.experiments[e].label);
    EXPECT_EQ(a.experiments[e].label, b.experiments[e].label);
    const sim::ReplicationResult& ra = a.experiments[e].result;
    const sim::ReplicationResult& rb = b.experiments[e].result;
    EXPECT_EQ(ra.total_arrived_cells, rb.total_arrived_cells);
    EXPECT_EQ(ra.total_frames, rb.total_frames);
    ASSERT_EQ(ra.clr.size(), rb.clr.size());
    for (std::size_t i = 0; i < ra.clr.size(); ++i) {
      EXPECT_EQ(ra.clr[i].pooled_clr, rb.clr[i].pooled_clr);
      EXPECT_EQ(ra.clr[i].clr.mean, rb.clr[i].clr.mean);
      EXPECT_EQ(ra.clr[i].clr.half_width, rb.clr[i].clr.half_width);
    }
    ASSERT_EQ(ra.bop.size(), rb.bop.size());
    for (std::size_t i = 0; i < ra.bop.size(); ++i) {
      EXPECT_EQ(ra.bop[i].pooled_bop, rb.bop[i].pooled_bop);
      EXPECT_EQ(ra.bop[i].bop.mean, rb.bop[i].bop.mean);
      EXPECT_EQ(ra.bop[i].bop.half_width, rb.bop[i].bop.half_width);
    }
  }
}

TEST(SimdE2E, TwoShardRunIsBitIdenticalToSingleProcess) {
  const std::string dir = ::testing::TempDir() + "/cts_simd_e2e";
  ASSERT_EQ(shell("mkdir -p '" + dir + "'"), 0);

  // Single-process reference: --shard-out alone records the degenerate 0/1
  // shard file, which merges to the plain run_replicated result.
  const std::string single_shard = dir + "/single_shard.json";
  const std::string single_metrics = dir + "/single_metrics.json";
  ASSERT_EQ(shell(kScale + ("'" + bench() + "' --quiet --shard-out='" +
                            single_shard + "' --metrics='" + single_metrics +
                            "' > '" + dir + "/single.log' 2>&1")),
            0);

  // 2-shard orchestrated run of the same binary at the same scale.
  const std::string merged_metrics = dir + "/merged_metrics.json";
  ASSERT_EQ(shell(kScale + ("'" + simd() + "' run '" + bench() +
                            "' --shards=2 --keep-shards --out-dir='" + dir +
                            "/shards' --metrics='" + merged_metrics +
                            "' --quiet > '" + dir + "/simd.log' 2>&1")),
            0);

  // The automated bit-identity check: merge both shard sets in-process and
  // compare every estimate with EXPECT_EQ (no tolerances).
  const sim::MergedShards single =
      sim::merge_shard_files({sim::read_shard_file(single_shard)});
  const sim::MergedShards sharded = sim::merge_shard_files(
      {sim::read_shard_file(dir + "/shards/shard_0.json"),
       sim::read_shard_file(dir + "/shards/shard_1.json")});
  EXPECT_EQ(single.shard_count, 1u);
  EXPECT_EQ(sharded.shard_count, 2u);
  // 3 replications across 2 shards exercise an uneven 1+2 split.
  EXPECT_GE(single.experiments.size(), 1u);
  expect_results_bit_identical(single, sharded);

  // The merged metrics report matches the single-process one under the
  // documented diff rules (exit 0).
  EXPECT_EQ(shell("'" + simd() + "' diff '" + single_metrics + "' '" +
                  merged_metrics + "' --quiet"),
            0);
}

TEST(SimdE2E, DiffDetectsDivergingReports) {
  const std::string dir = ::testing::TempDir();
  const std::string a = dir + "/simd_diff_a.json";
  const std::string b = dir + "/simd_diff_b.json";
  const std::string base =
      R"({"config":{"run_id":"x"},"metrics":{"counters":{"sim.replications":)";
  write_file(a, base + R"(3},"sums":{},"gauges":{},"histograms":{}}})");
  write_file(b, base + R"(4},"sums":{},"gauges":{},"histograms":{}}})");
  EXPECT_EQ(shell("'" + simd() + "' diff '" + a + "' '" + a + "' --quiet"), 0);
  EXPECT_EQ(shell("'" + simd() + "' diff '" + a + "' '" + b + "' --quiet"), 1);
  EXPECT_EQ(shell("'" + simd() + "' diff '" + a + "' /nonexistent.json "
                  "2>/dev/null"),
            2);
}

TEST(SimdE2E, BenchRejectsMalformedShardFlag) {
  EXPECT_EQ(shell("'" + bench() + "' --shard=junk --quiet > /dev/null 2>&1"),
            2);
  EXPECT_EQ(shell("'" + bench() + "' --shard=3/2 --quiet > /dev/null 2>&1"),
            2);
}

TEST(SimdE2E, UsageErrorsExitTwo) {
  EXPECT_EQ(shell("'" + simd() + "' > /dev/null 2>&1"), 2);
  EXPECT_EQ(shell("'" + simd() + "' frobnicate > /dev/null 2>&1"), 2);
  EXPECT_EQ(shell("'" + simd() + "' run > /dev/null 2>&1"), 2);
  EXPECT_EQ(shell("'" + simd() + "' --help > /dev/null"), 0);
}

#endif  // CTS_TOOLS_BIN_DIR && CTS_BENCH_BIN_DIR

}  // namespace
