// Unit tests for automatic DAR order selection.

#include "cts/fit/order_selection.hpp"

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

cf::OrderSelectionProblem problem(double buffer_per_source) {
  cf::OrderSelectionProblem p;
  p.mean = 500.0;
  p.variance = 5000.0;
  p.bandwidth = 538.0;
  p.buffer_per_source = buffer_per_source;
  p.n_sources = 30;
  return p;
}

}  // namespace

TEST(OrderSelection, GeometricTargetNeedsOrderOne) {
  // A geometric ACF IS a DAR(1): order 1 must suffice at any buffer.
  const cts::core::GeometricAcf target(0.8);
  const cf::OrderSelection sel = cf::select_dar_order(target, problem(100.0));
  EXPECT_EQ(sel.order, 1u);
  EXPECT_NEAR(sel.log10_bop, sel.target_log10_bop, 0.05);
}

TEST(OrderSelection, ZeroBufferNeedsOrderOne) {
  // m*_0 = 1: correlations are irrelevant, any order works.
  const cf::ModelSpec z = cf::make_za(0.975);
  const cf::OrderSelection sel = cf::select_dar_order(*z.acf, problem(0.0));
  EXPECT_EQ(sel.order, 1u);
}

TEST(OrderSelection, RequiredOrderGrowsWithBuffer) {
  // The paper's closing point, made constructive: bigger buffers resolve
  // more correlation lags, so the needed model order grows.
  const cf::ModelSpec z = cf::make_za(0.975);
  std::size_t prev = 0;
  for (const double b : {0.0, 50.0, 200.0}) {
    const cf::OrderSelection sel = cf::select_dar_order(*z.acf, problem(b));
    EXPECT_GE(sel.order, prev) << "b=" << b;
    prev = sel.order;
  }
  EXPECT_GE(prev, 2u);  // 200 cells/source resolves beyond lag 1
}

TEST(OrderSelection, SelectedOrderPredictionIsClose) {
  const cf::ModelSpec z = cf::make_za(0.9);
  const cf::OrderSelection sel = cf::select_dar_order(*z.acf, problem(80.0));
  // The converged DAR prediction tracks the full-ACF prediction within a
  // modest margin (the DAR tail differs from the LRD tail beyond p, but
  // inside the CTS the first lags dominate).
  EXPECT_LT(std::abs(sel.log10_bop - sel.target_log10_bop), 1.0);
  EXPECT_EQ(sel.trace.size(), sel.order + 1);
}

TEST(OrderSelection, ValidatesProblem) {
  const cts::core::GeometricAcf target(0.5);
  cf::OrderSelectionProblem bad = problem(10.0);
  bad.bandwidth = 400.0;
  EXPECT_THROW(cf::select_dar_order(target, bad), cu::InvalidArgument);
  bad = problem(10.0);
  bad.max_order = 1;
  EXPECT_THROW(cf::select_dar_order(target, bad), cu::InvalidArgument);
}
