// Unit tests for analytic ACF models.

#include "cts/core/acf_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/dar.hpp"
#include "cts/proc/fgn.hpp"
#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

TEST(GeometricAcf, PowersOfA) {
  const cc::GeometricAcf acf(0.8);
  EXPECT_DOUBLE_EQ(acf.at(0), 1.0);
  EXPECT_DOUBLE_EQ(acf.at(1), 0.8);
  EXPECT_NEAR(acf.at(10), std::pow(0.8, 10), 1e-15);
}

TEST(GeometricAcf, RejectsOutOfRange) {
  EXPECT_THROW(cc::GeometricAcf(1.0), cu::InvalidArgument);
  EXPECT_THROW(cc::GeometricAcf(-0.1), cu::InvalidArgument);
}

TEST(DarAcf, MatchesDarParamsRecursion) {
  cts::proc::DarParams params;
  params.rho = 0.87;
  params.lag_probs = {0.7, 0.3};
  params.mean = 0.0;
  params.variance = 1.0;
  const std::vector<double> expected = params.acf(30);
  const cc::DarAcf acf(0.87, {0.7, 0.3});
  for (std::size_t k = 0; k <= 30; ++k) {
    EXPECT_NEAR(acf.at(k), expected[k], 1e-10) << "lag " << k;
  }
}

TEST(DarAcf, OrderOneIsGeometric) {
  const cc::DarAcf acf(0.9, {1.0});
  for (std::size_t k = 0; k <= 20; ++k) {
    EXPECT_NEAR(acf.at(k), std::pow(0.9, static_cast<double>(k)), 1e-12);
  }
}

TEST(DarAcf, RandomAccessOrderIndependent) {
  // Querying a large lag first must not corrupt the cache.
  const cc::DarAcf a(0.8, {0.6, 0.4});
  const cc::DarAcf b(0.8, {0.6, 0.4});
  const double big_first = a.at(100);
  (void)b.at(1);
  const double big_second = b.at(100);
  EXPECT_DOUBLE_EQ(big_first, big_second);
}

TEST(ExactLrdAcf, MatchesFgnForUnitWeight) {
  const cc::ExactLrdAcf acf(0.8, 1.0);
  for (std::size_t k = 1; k <= 50; ++k) {
    EXPECT_NEAR(acf.at(k), cts::proc::fgn_acf(k, 0.8), 1e-14) << "lag " << k;
  }
}

TEST(ExactLrdAcf, WeightScalesAllLags) {
  const cc::ExactLrdAcf full(0.85, 1.0);
  const cc::ExactLrdAcf scaled(0.85, 0.4);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(scaled.at(k), 0.4 * full.at(k), 1e-14);
  }
  EXPECT_DOUBLE_EQ(scaled.at(0), 1.0);  // r(0) stays 1 by definition
}

TEST(ExactLrdAcf, RejectsBadParameters) {
  EXPECT_THROW(cc::ExactLrdAcf(0.5, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cc::ExactLrdAcf(1.0, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cc::ExactLrdAcf(0.8, 0.0), cu::InvalidArgument);
  EXPECT_THROW(cc::ExactLrdAcf(0.8, 1.5), cu::InvalidArgument);
}

TEST(MixtureAcf, WeightedSum) {
  auto geo = std::make_shared<cc::GeometricAcf>(0.5);
  auto lrd = std::make_shared<cc::ExactLrdAcf>(0.9, 0.9);
  const cc::MixtureAcf mix({lrd, geo}, {0.5, 0.5});
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(mix.at(k), 0.5 * lrd->at(k) + 0.5 * geo->at(k), 1e-14);
  }
  EXPECT_DOUBLE_EQ(mix.at(0), 1.0);
}

TEST(MixtureAcf, ValidatesWeights) {
  auto geo = std::make_shared<cc::GeometricAcf>(0.5);
  EXPECT_THROW(cc::MixtureAcf({geo}, {0.9}), cu::InvalidArgument);
  EXPECT_THROW(cc::MixtureAcf({geo}, {0.5, 0.5}), cu::InvalidArgument);
  EXPECT_THROW(cc::MixtureAcf({}, {}), cu::InvalidArgument);
  EXPECT_THROW(cc::MixtureAcf({nullptr}, {1.0}), cu::InvalidArgument);
}

TEST(WhiteAcf, ZeroBeyondLagZero) {
  const cc::WhiteAcf acf;
  EXPECT_DOUBLE_EQ(acf.at(0), 1.0);
  EXPECT_DOUBLE_EQ(acf.at(1), 0.0);
  EXPECT_DOUBLE_EQ(acf.at(1000), 0.0);
}

TEST(TabulatedAcf, TableWithZeroTail) {
  const cc::TabulatedAcf acf({1.0, 0.5, 0.2});
  EXPECT_DOUBLE_EQ(acf.at(0), 1.0);
  EXPECT_DOUBLE_EQ(acf.at(1), 0.5);
  EXPECT_DOUBLE_EQ(acf.at(2), 0.2);
  EXPECT_DOUBLE_EQ(acf.at(3), 0.0);
}

TEST(TabulatedAcf, RequiresUnitLagZero) {
  EXPECT_THROW(cc::TabulatedAcf({0.9, 0.5}), cu::InvalidArgument);
  EXPECT_THROW(cc::TabulatedAcf({}), cu::InvalidArgument);
}
