// Unit tests for table rendering, CSV output and flag parsing.

#include <cstdlib>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cts/util/csv.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace cu = cts::util;

TEST(TextTable, RendersAlignedColumns) {
  cu::TextTable table({"model", "clr"});
  table.add_row({"Z^0.7", "1.2e-06"});
  table.add_row({"DAR(1)", "3.4e-06"});
  const std::string out = table.render();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("Z^0.7"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  cu::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), cu::InvalidArgument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(cu::TextTable({}), cu::InvalidArgument);
}

TEST(Formatting, FixedSciInt) {
  EXPECT_EQ(cu::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(cu::format_sci(0.00123, 2), "1.23e-03");
  EXPECT_EQ(cu::format_int(-42), "-42");
}

TEST(CsvWriter, RendersAndEscapes) {
  cu::CsvWriter csv({"name", "value"});
  csv.add_row({"plain", "1"});
  csv.add_row({"has,comma", "2"});
  csv.add_row({"has\"quote", "3"});
  const std::string out = csv.render();
  EXPECT_NE(out.find("name,value\n"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\",2"), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\",3"), std::string::npos);
}

TEST(CsvWriter, WritesFile) {
  cu::CsvWriter csv({"x"});
  csv.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/cts_test.csv";
  EXPECT_TRUE(csv.write(path));
}

TEST(Flags, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--frames=500", "--model=Z"};
  cu::Flags flags(3, argv);
  EXPECT_EQ(flags.get_int("frames", 0), 500);
  EXPECT_EQ(flags.get_string("model", ""), "Z");
}

TEST(Flags, ParsesKeySpaceValueAndBooleans) {
  const char* argv[] = {"prog", "--reps", "60", "--verbose", "--x=1.5"};
  cu::Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("reps", 0), 60);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 1.5);
}

TEST(Flags, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  cu::Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("frames", 123), 123);
  EXPECT_FALSE(flags.has("frames"));
}

TEST(Flags, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--frames=abc"};
  cu::Flags flags(2, argv);
  EXPECT_THROW(flags.get_int("frames", 0), cu::InvalidArgument);
}

TEST(Flags, UnknownKeysReportsTyposOnly) {
  const char* argv[] = {"prog", "--frmes=500000", "--csv=out.csv", "--quiet"};
  cu::Flags flags(4, argv);
  const std::vector<std::string> unknown =
      flags.unknown_keys({"frames", "csv", "quiet"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "frmes");
}

TEST(Flags, WarnUnknownPrintsWarningAndKnownList) {
  const char* argv[] = {"prog", "--frmes=500000"};
  cu::Flags flags(2, argv);
  std::ostringstream os;
  EXPECT_EQ(flags.warn_unknown(os, {"frames", "csv"}), 1u);
  EXPECT_NE(os.str().find("unknown flag --frmes"), std::string::npos);
  EXPECT_NE(os.str().find("--frames"), std::string::npos);
}

TEST(Flags, SuggestNamesTheNearestKnownFlag) {
  const std::vector<std::string> known = {"csv", "trace", "metrics", "quiet"};
  EXPECT_EQ(cu::Flags::suggest("metrcs", known), "metrics");
  EXPECT_EQ(cu::Flags::suggest("trase", known), "trace");
  EXPECT_EQ(cu::Flags::suggest("qt", known), "");       // too far from anything
  EXPECT_EQ(cu::Flags::suggest("bananas", known), "");  // nothing plausible
  EXPECT_EQ(cu::Flags::suggest("metrics", {}), "");
}

TEST(Flags, WarnUnknownSuggestsDidYouMean) {
  const char* argv[] = {"prog", "--metrcs=out.json"};
  cu::Flags flags(2, argv);
  std::ostringstream os;
  EXPECT_EQ(flags.warn_unknown(os, {"csv", "trace", "metrics", "quiet"}), 1u);
  EXPECT_NE(os.str().find("unknown flag --metrcs"), std::string::npos);
  EXPECT_NE(os.str().find("did you mean --metrics?"), std::string::npos);
}

TEST(Flags, WarnUnknownSilentWhenAllKnown) {
  const char* argv[] = {"prog", "--csv=out.csv"};
  cu::Flags flags(2, argv);
  std::ostringstream os;
  EXPECT_EQ(flags.warn_unknown(os, {"csv"}), 0u);
  EXPECT_TRUE(os.str().empty());
}

TEST(EnvFlag, ParsesTruthyValues) {
  ::setenv("CTS_TEST_ENV_FLAG", "1", 1);
  EXPECT_TRUE(cu::env_flag("CTS_TEST_ENV_FLAG"));
  ::setenv("CTS_TEST_ENV_FLAG", "yes", 1);
  EXPECT_TRUE(cu::env_flag("CTS_TEST_ENV_FLAG"));
  ::setenv("CTS_TEST_ENV_FLAG", "0", 1);
  EXPECT_FALSE(cu::env_flag("CTS_TEST_ENV_FLAG"));
  ::unsetenv("CTS_TEST_ENV_FLAG");
  EXPECT_FALSE(cu::env_flag("CTS_TEST_ENV_FLAG"));
}

TEST(EnvInt, ParsesWithFallback) {
  ::setenv("CTS_TEST_ENV_INT", "77", 1);
  EXPECT_EQ(cu::env_int("CTS_TEST_ENV_INT", 5), 77);
  ::setenv("CTS_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(cu::env_int("CTS_TEST_ENV_INT", 5), -3);
  ::unsetenv("CTS_TEST_ENV_INT");
  EXPECT_EQ(cu::env_int("CTS_TEST_ENV_INT", 5), 5);
}

TEST(EnvInt, RejectsMalformedValues) {
  // A typo'd override must never silently run at the fallback scale.
  ::setenv("CTS_TEST_ENV_INT", "junk", 1);
  EXPECT_THROW(cu::env_int("CTS_TEST_ENV_INT", 5), cu::InvalidArgument);
  ::setenv("CTS_TEST_ENV_INT", "12abc", 1);  // partial parse
  EXPECT_THROW(cu::env_int("CTS_TEST_ENV_INT", 5), cu::InvalidArgument);
  ::setenv("CTS_TEST_ENV_INT", "", 1);
  EXPECT_THROW(cu::env_int("CTS_TEST_ENV_INT", 5), cu::InvalidArgument);
  ::setenv("CTS_TEST_ENV_INT", "99999999999999999999999", 1);  // overflow
  EXPECT_THROW(cu::env_int("CTS_TEST_ENV_INT", 5), cu::InvalidArgument);
  ::unsetenv("CTS_TEST_ENV_INT");
}

TEST(Flags, GetDoubleRejectsMalformedValues) {
  // std::stod would silently accept "1.5abc" as 1.5; a typo'd threshold
  // would then gate on the wrong number.  Strict full-string parsing
  // rejects trailing junk, empty values, and overflow.
  const char* argv[] = {"prog", "--x=1.5abc", "--empty=", "--big=1e999999"};
  cu::Flags flags(4, argv);
  EXPECT_THROW(flags.get_double("x", 0.0), cu::InvalidArgument);
  EXPECT_THROW(flags.get_double("empty", 0.0), cu::InvalidArgument);
  EXPECT_THROW(flags.get_double("big", 0.0), cu::InvalidArgument);
}

TEST(Flags, GetDoubleErrorNamesFlagAndValue) {
  const char* argv[] = {"prog", "--threshold=1.5abc"};
  cu::Flags flags(2, argv);
  try {
    flags.get_double("threshold", 0.0);
    FAIL() << "expected InvalidArgument";
  } catch (const cu::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--threshold"), std::string::npos);
    EXPECT_NE(what.find("1.5abc"), std::string::npos);
  }
}

TEST(Flags, GetDoubleAcceptsScientificAndUnderflow) {
  const char* argv[] = {"prog", "--x=1.5e3", "--tiny=1e-320", "--neg=-2.5"};
  cu::Flags flags(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 1500.0);
  // Underflow to zero/denormal is an acceptable representation of a tiny
  // input, unlike overflow.
  EXPECT_NO_THROW(flags.get_double("tiny", 0.0));
  EXPECT_DOUBLE_EQ(flags.get_double("neg", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(flags.get_double("absent", 3.5), 3.5);
}

TEST(Flags, GetIntRejectsMalformedValues) {
  const char* argv[] = {"prog", "--reps=12abc", "--empty=",
                        "--big=99999999999999999999999"};
  cu::Flags flags(4, argv);
  EXPECT_THROW(flags.get_int("reps", 0), cu::InvalidArgument);
  EXPECT_THROW(flags.get_int("empty", 0), cu::InvalidArgument);
  EXPECT_THROW(flags.get_int("big", 0), cu::InvalidArgument);
  try {
    flags.get_int("reps", 0);
    FAIL() << "expected InvalidArgument";
  } catch (const cu::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--reps"), std::string::npos);
    EXPECT_NE(what.find("12abc"), std::string::npos);
  }
}

TEST(TryParseDouble, StrictFullString) {
  double value = 0.0;
  EXPECT_TRUE(cu::try_parse_double("1.5", &value));
  EXPECT_DOUBLE_EQ(value, 1.5);
  EXPECT_TRUE(cu::try_parse_double("-2e3", &value));
  EXPECT_DOUBLE_EQ(value, -2000.0);
  EXPECT_FALSE(cu::try_parse_double("", &value));
  EXPECT_FALSE(cu::try_parse_double("1.5abc", &value));
  EXPECT_FALSE(cu::try_parse_double("abc", &value));
  EXPECT_FALSE(cu::try_parse_double("1e999", &value));   // overflow
  EXPECT_TRUE(cu::try_parse_double("1e-999", &value));   // underflow is fine
  EXPECT_TRUE(cu::try_parse_double("250", nullptr));     // probe-only call
}

TEST(TryParseInt, StrictFullString) {
  std::int64_t value = 0;
  EXPECT_TRUE(cu::try_parse_int("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(cu::try_parse_int("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(cu::try_parse_int("", &value));
  EXPECT_FALSE(cu::try_parse_int("12abc", &value));
  EXPECT_FALSE(cu::try_parse_int("1.5", &value));
  EXPECT_FALSE(cu::try_parse_int("99999999999999999999999", &value));
}

TEST(EnvInt, ErrorNamesVariableAndValue) {
  ::setenv("CTS_TEST_ENV_INT", "12abc", 1);
  try {
    cu::env_int("CTS_TEST_ENV_INT", 5);
    FAIL() << "expected InvalidArgument";
  } catch (const cu::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CTS_TEST_ENV_INT"), std::string::npos);
    EXPECT_NE(what.find("12abc"), std::string::npos);
  }
  ::unsetenv("CTS_TEST_ENV_INT");
}
