// Unit tests for the random-number substrate.

#include "cts/util/rng.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cu = cts::util;

TEST(Xoshiro, DeterministicForFixedSeed) {
  cu::Xoshiro256pp a(42);
  cu::Xoshiro256pp b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  cu::Xoshiro256pp a(1);
  cu::Xoshiro256pp b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, Uniform01InRangeAndCentered) {
  cu::Xoshiro256pp rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, SplitStreamsAreDecorrelated) {
  cu::Xoshiro256pp parent(99);
  cu::Xoshiro256pp child = parent.split();
  // Crude cross-correlation check on uniform draws.
  const int n = 50000;
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = parent.uniform01();
    const double y = child.uniform01();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(std::abs(corr), 0.02);
}

TEST(Xoshiro, JumpChangesState) {
  cu::Xoshiro256pp a(5);
  cu::Xoshiro256pp b(5);
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(NormalSampler, MomentsMatchStandardNormal) {
  cu::Xoshiro256pp rng(2024);
  cu::NormalSampler normal;
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = normal(rng);
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // Gaussian kurtosis
}

TEST(PoissonSample, ZeroMeanGivesZero) {
  cu::Xoshiro256pp rng(1);
  EXPECT_EQ(cu::poisson_sample(rng, 0.0), 0u);
}

TEST(PoissonSample, RejectsInvalidMean) {
  cu::Xoshiro256pp rng(1);
  EXPECT_THROW(cu::poisson_sample(rng, -1.0), cu::InvalidArgument);
  EXPECT_THROW(cu::poisson_sample(rng, std::nan("")), cu::InvalidArgument);
}

class PoissonMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMomentsTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  cu::Xoshiro256pp rng(static_cast<std::uint64_t>(mean * 1000) + 17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(cu::poisson_sample(rng, mean));
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double v = sum2 / n - m * m;
  // Standard error of the mean ~ sqrt(mean/n); 6-sigma tolerance.
  const double tol = 6.0 * std::sqrt(mean / n) + 1e-3;
  EXPECT_NEAR(m, mean, tol) << "mean=" << mean;
  // Variance estimate is noisier; allow 3%-relative plus absolute floor.
  EXPECT_NEAR(v, mean, 0.03 * mean + 0.01) << "mean=" << mean;
}

// Covers both the inversion branch (< 30) and the PTRS branch (>= 30),
// including the FBNDP operating range (hundreds).
INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMomentsTest,
                         ::testing::Values(0.1, 1.0, 5.0, 12.0, 29.5, 30.5,
                                           80.0, 250.0, 1000.0));
