// Unit tests for heterogeneous-population aggregation and B-R analysis.

#include "cts/core/heterogeneous.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

cc::PopulationClass cls(const cf::ModelSpec& spec, std::size_t count) {
  cc::PopulationClass out;
  out.acf = spec.acf;
  out.mean = spec.mean;
  out.variance = spec.variance;
  out.count = count;
  return out;
}

}  // namespace

TEST(AggregatePopulation, MomentsAdd) {
  const cf::ModelSpec z = cf::make_za(0.9);
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.975, 1);
  const cc::AggregateModel agg =
      cc::aggregate_population({cls(z, 10), cls(dar, 20)});
  EXPECT_DOUBLE_EQ(agg.mean, 30 * 500.0);
  EXPECT_DOUBLE_EQ(agg.variance, 30 * 5000.0);
  EXPECT_DOUBLE_EQ(agg.acf->at(0), 1.0);
  // Variance-weighted mixture: with equal per-source variances, weights are
  // count-proportional.
  const double expected_r1 =
      (10.0 * z.acf->at(1) + 20.0 * dar.acf->at(1)) / 30.0;
  EXPECT_NEAR(agg.acf->at(1), expected_r1, 1e-12);
}

TEST(AggregatePopulation, SkipsZeroCountAndValidates) {
  const cf::ModelSpec z = cf::make_za(0.9);
  const cc::AggregateModel agg =
      cc::aggregate_population({cls(z, 5), cls(cf::make_l(), 0)});
  EXPECT_DOUBLE_EQ(agg.mean, 5 * 500.0);
  EXPECT_THROW(cc::aggregate_population({}), cu::InvalidArgument);
  EXPECT_THROW(cc::aggregate_population({cls(z, 0)}), cu::InvalidArgument);
}

TEST(HeterogeneousBr, HomogeneousCaseMatchesPerSourceFormulation) {
  // The aggregate formulation must reproduce the homogeneous B-R exactly
  // (the rate function factorises: [Nb + m N(c-mu)]^2 / (2 N V) = N I).
  const cf::ModelSpec z = cf::make_za(0.975);
  const std::size_t n = 30;
  const double c = 538.0;
  const double b = 150.0;

  cc::RateFunction per_source(z.acf, z.mean, z.variance, c);
  const cc::BopPoint homogeneous = cc::br_log10_bop(per_source, b, n);

  const cc::BopPoint aggregate = cc::heterogeneous_br_log10_bop(
      {cls(z, n)}, c * static_cast<double>(n), b * static_cast<double>(n));

  EXPECT_NEAR(aggregate.log10_bop, homogeneous.log10_bop, 1e-9);
  EXPECT_EQ(aggregate.critical_m, homogeneous.critical_m);
}

TEST(HeterogeneousBr, MixLandsBetweenPureCases) {
  // A 50/50 mix of weakly and strongly correlated sources must be bounded
  // by the two pure populations.
  const cf::ModelSpec weak = cf::make_dar_matched_to_za(0.7, 1);
  const cf::ModelSpec strong = cf::make_dar_matched_to_za(0.99, 1);
  const double capacity = 30 * 538.0;
  const double buffer = 30 * 100.0;
  const double pure_weak =
      cc::heterogeneous_br_log10_bop({cls(weak, 30)}, capacity, buffer)
          .log10_bop;
  const double pure_strong =
      cc::heterogeneous_br_log10_bop({cls(strong, 30)}, capacity, buffer)
          .log10_bop;
  const double mixed =
      cc::heterogeneous_br_log10_bop({cls(weak, 15), cls(strong, 15)},
                                     capacity, buffer)
          .log10_bop;
  EXPECT_LT(pure_weak, mixed);
  EXPECT_LT(mixed, pure_strong);
}

TEST(HeterogeneousBr, RejectsUnstablePopulation) {
  const cf::ModelSpec z = cf::make_za(0.9);
  EXPECT_THROW(
      cc::heterogeneous_br_log10_bop({cls(z, 30)}, 30 * 499.0, 1000.0),
      cu::InvalidArgument);
}

TEST(HeterogeneousBr, AddingSourcesRaisesLoss) {
  const cf::ModelSpec z = cf::make_za(0.9);
  const double capacity = 40 * 520.0;
  const double buffer = 4000.0;
  double prev = -1e9;
  for (const std::size_t n : {20u, 30u, 38u}) {
    const double bop =
        cc::heterogeneous_br_log10_bop({cls(z, n)}, capacity, buffer)
            .log10_bop;
    EXPECT_GT(bop, prev) << "n=" << n;
    prev = bop;
  }
}
