// Unit tests for deterministic smoothing and the link model.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/atm/link.hpp"
#include "cts/atm/smoothing.hpp"
#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cu = cts::util;

TEST(Smoothing, ScheduleIsEquispacedWithinFrame) {
  const std::vector<double> times = ca::smoothing_schedule(4, 0.04);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.005);
  EXPECT_DOUBLE_EQ(times[1], 0.015);
  EXPECT_DOUBLE_EQ(times[3], 0.035);
  // Constant gap Ts/cells.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 0.01, 1e-15);
  }
  // All within [0, Ts).
  EXPECT_LT(times.back(), 0.04);
}

TEST(Smoothing, EmptyFrameHasEmptySchedule) {
  EXPECT_TRUE(ca::smoothing_schedule(0, 0.04).empty());
  EXPECT_DOUBLE_EQ(ca::smoothing_gap(0, 0.04), 0.0);
}

TEST(Smoothing, GapMatchesScheduleSpacing) {
  EXPECT_DOUBLE_EQ(ca::smoothing_gap(500, 0.04), 0.04 / 500.0);
  EXPECT_THROW(ca::smoothing_gap(1, 0.0), cu::InvalidArgument);
}

TEST(Smoothing, CellsForPayloadCeilingDivision) {
  EXPECT_EQ(ca::cells_for_payload(0), 0u);
  EXPECT_EQ(ca::cells_for_payload(1), 1u);
  EXPECT_EQ(ca::cells_for_payload(48), 1u);
  EXPECT_EQ(ca::cells_for_payload(49), 2u);
  EXPECT_EQ(ca::cells_for_payload(480), 10u);
}

TEST(Link, Oc3CellRate) {
  const ca::Link link(ca::kOc3PayloadBitsPerSecond);
  // 149.76 Mb/s / (53*8 bits) ~ 353208 cells/s.
  EXPECT_NEAR(link.cells_per_second(), 149.76e6 / 424.0, 1e-6);
  EXPECT_NEAR(link.cells_per_frame(0.04), 149.76e6 / 424.0 * 0.04, 1e-6);
}

TEST(Link, BufferDelayRoundTrip) {
  const ca::Link link(ca::kOc3PayloadBitsPerSecond);
  for (const double ms : {1.0, 20.0, 30.0}) {
    const double cells = link.buffer_cells_for_delay_ms(ms);
    EXPECT_NEAR(link.buffer_delay_ms(cells), ms, 1e-9);
  }
}

TEST(Link, PaperOperatingPointDelay) {
  // The paper's multiplexer: C = 16140 cells / 40 ms = 403,500 cells/s.
  // Back out the implied bit rate and check a 12105-cell buffer = 30 ms.
  const double cells_per_second = 16140.0 / 0.04;
  const ca::Link link(cells_per_second * 53 * 8);
  EXPECT_NEAR(link.buffer_delay_ms(12105.0), 30.0, 1e-9);
}

TEST(Link, CellTimeIsInverseRate) {
  const ca::Link link(424.0e6);  // 1M cells/s
  EXPECT_NEAR(link.cell_time(), 1e-6, 1e-15);
}

TEST(Link, RejectsNonPositiveRate) {
  EXPECT_THROW(ca::Link(0.0), cu::InvalidArgument);
  const ca::Link link(ca::kOc3BitsPerSecond);
  EXPECT_THROW(link.buffer_delay_ms(-1.0), cu::InvalidArgument);
  EXPECT_THROW(link.cells_per_frame(0.0), cu::InvalidArgument);
}
