// Unit tests for the Bahadur-Rao, Large-N and Weibull-LRD asymptotics.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/large_n.hpp"
#include "cts/core/weibull_lrd.hpp"
#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

namespace {

cc::RateFunction lrd_rate(double h, double w) {
  return cc::RateFunction(std::make_shared<cc::ExactLrdAcf>(h, w), 500.0,
                          5000.0, 538.0);
}

}  // namespace

TEST(BrAsymptotic, TighterThanLargeN) {
  // The g1 refinement is negative, so B-R <= large-N pointwise.
  const cc::RateFunction rate = lrd_rate(0.9, 0.9);
  for (const double b : {10.0, 100.0, 500.0}) {
    const double br = cc::br_log10_bop(rate, b, 30).log10_bop;
    const double ln = cc::large_n_log10_bop(rate, b, 30).log10_bop;
    EXPECT_LT(br, ln) << "b=" << b;
  }
}

TEST(BrAsymptotic, RefinementIsAboutHalfLogTerm) {
  const cc::RateFunction rate = lrd_rate(0.9, 0.9);
  const double b = 200.0;
  const cc::BopPoint br = cc::br_log10_bop(rate, b, 30);
  const cc::BopPoint ln = cc::large_n_log10_bop(rate, b, 30);
  const double expected_gap =
      0.5 * std::log(4.0 * cu::kPi * 30.0 * br.rate) / std::log(10.0);
  EXPECT_NEAR(ln.log10_bop - br.log10_bop, expected_gap, 1e-9);
}

TEST(BrAsymptotic, MonotoneInBufferAndN) {
  const cc::RateFunction rate = lrd_rate(0.9, 0.9);
  double prev = 1.0;
  for (const double b : {0.0, 50.0, 200.0, 800.0}) {
    const double log_bop = cc::br_log10_bop(rate, b, 30).log10_bop;
    EXPECT_LT(log_bop, prev) << "b=" << b;
    prev = log_bop;
  }
  EXPECT_LT(cc::br_log10_bop(rate, 100.0, 60).log10_bop,
            cc::br_log10_bop(rate, 100.0, 30).log10_bop);
}

TEST(BrAsymptotic, ClampsAtProbabilityOne) {
  // A pathological corner (tiny drift, b = 0, N = 1) must not produce a
  // positive log-probability.
  const cc::RateFunction rate(std::make_shared<cc::WhiteAcf>(), 500.0,
                              5000.0, 500.001);
  EXPECT_LE(cc::br_log10_bop(rate, 0.0, 1).log10_bop, 0.0);
}

TEST(BrAsymptotic, RejectsZeroSources) {
  const cc::RateFunction rate = lrd_rate(0.9, 0.9);
  EXPECT_THROW(cc::br_log10_bop(rate, 1.0, 0), cu::InvalidArgument);
}

TEST(WeibullLrd, KappaValues) {
  EXPECT_DOUBLE_EQ(cc::kappa(0.5), 0.5);
  EXPECT_NEAR(cc::kappa(0.9),
              std::pow(0.9, 0.9) * std::pow(0.1, 0.1), 1e-15);
  EXPECT_THROW(cc::kappa(0.0), cu::InvalidArgument);
}

TEST(WeibullLrd, ParamsValidation) {
  cc::WeibullLrdParams p;
  EXPECT_NO_THROW(p.validate());
  p.hurst = 0.5;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p = cc::WeibullLrdParams{};
  p.bandwidth = p.mean;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

TEST(WeibullLrd, MatchesBrAsymptoticOnExactLrdModel) {
  // Eq. (6) is derived from the B-R asymptotic via the V(m) ~ sigma^2 g
  // m^{2H} approximation; on a pure exact-LRD model with a large buffer the
  // two must agree closely (in log10 terms).
  cc::WeibullLrdParams p;
  p.hurst = 0.9;
  p.weight = 0.9;
  p.mean = 500.0;
  p.variance = 5000.0;
  p.bandwidth = 538.0;
  const std::size_t n = 30;
  const cc::RateFunction rate = lrd_rate(p.hurst, p.weight);
  for (const double b : {2000.0, 8000.0}) {
    const double total_buffer = b * static_cast<double>(n);
    const double weibull = cc::weibull_log10_bop(p, n, total_buffer);
    const double br = cc::br_log10_bop(rate, b, n).log10_bop;
    EXPECT_NEAR(weibull / br, 1.0, 0.05) << "b=" << b;
  }
}

TEST(WeibullLrd, ExponentScalesAsBufferPower) {
  cc::WeibullLrdParams p;
  p.hurst = 0.9;
  const double j1 = cc::weibull_exponent(p, 30, 1000.0);
  const double j4 = cc::weibull_exponent(p, 30, 4000.0);
  // J ~ B^{2-2H} = B^{0.2}.
  EXPECT_NEAR(j4 / j1, std::pow(4.0, 0.2), 1e-9);
}

TEST(WeibullLrd, SubexponentialDecayIsVisible) {
  // Log-BOP vs buffer flattens (Weibull), unlike a Markov log-linear decay.
  cc::WeibullLrdParams p;
  p.hurst = 0.9;
  const double d1 = cc::weibull_log10_bop(p, 30, 2000.0) -
                    cc::weibull_log10_bop(p, 30, 1000.0);
  const double d2 = cc::weibull_log10_bop(p, 30, 4000.0) -
                    cc::weibull_log10_bop(p, 30, 3000.0);
  EXPECT_LT(std::abs(d2), std::abs(d1));
}

TEST(WeibullLrd, CriticalMClosedForm) {
  cc::WeibullLrdParams p;
  p.hurst = 0.9;
  p.mean = 500.0;
  p.bandwidth = 538.0;
  EXPECT_NEAR(cc::weibull_critical_m(p, 380.0), 9.0 * 10.0, 1e-9);
}

TEST(WeibullLrd, RejectsBadArguments) {
  cc::WeibullLrdParams p;
  EXPECT_THROW(cc::weibull_exponent(p, 0, 100.0), cu::InvalidArgument);
  EXPECT_THROW(cc::weibull_exponent(p, 30, 0.0), cu::InvalidArgument);
}
