// Noise-aware BENCH_*.json comparison: a regression must trip only when a
// metric moves beyond BOTH the k x MAD gate and the relative gate, in the
// worse direction; schema violations must throw.

#include <gtest/gtest.h>

#include <string>

#include "cts/obs/bench_compare.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

/// A minimal cts.bench.v1 document with one bench and one metric.
std::string doc(double median, double mad) {
  return std::string(R"({"schema":"cts.bench.v1","benches":{"fig9":)") +
         R"({"metrics":{"wall_s":{"median":)" + std::to_string(median) +
         R"(,"mad":)" + std::to_string(mad) + R"(}}}}})";
}

obs::CompareOptions wall_only() {
  obs::CompareOptions options;
  options.metrics = {"wall_s"};
  return options;
}

TEST(RequireBenchSchema, AcceptsAndRejects) {
  EXPECT_NO_THROW(obs::require_bench_schema(obs::json_parse(doc(1.0, 0.1))));
  EXPECT_THROW(obs::require_bench_schema(obs::json_parse("[1,2]")),
               cts::util::InvalidArgument);
  EXPECT_THROW(obs::require_bench_schema(
                   obs::json_parse(R"({"schema":"other.v9","benches":{}})")),
               cts::util::InvalidArgument);
  EXPECT_THROW(obs::require_bench_schema(
                   obs::json_parse(R"({"schema":"cts.bench.v1"})")),
               cts::util::InvalidArgument);
}

TEST(CompareBench, IdenticalFilesHaveNoRegression) {
  const obs::JsonValue a = obs::json_parse(doc(1.0, 0.05));
  const obs::CompareReport report =
      obs::compare_bench_reports(a, a, wall_only());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_FALSE(report.has_regression());
  EXPECT_FALSE(report.deltas[0].improvement);
  EXPECT_DOUBLE_EQ(report.deltas[0].rel, 0.0);
}

TEST(CompareBench, RegressionBeyondBothGates) {
  // +50% with MAD 0.05: delta 0.5 > 3*0.05 and > 5% -> regression.
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(doc(1.0, 0.05)), obs::json_parse(doc(1.5, 0.05)),
      wall_only());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.has_regression());
  EXPECT_TRUE(report.deltas[0].regression);
  EXPECT_NEAR(report.deltas[0].rel, 0.5, 1e-12);
}

TEST(CompareBench, NoiseWithinMadGateStaysQuiet) {
  // +8% relative but within 3 x MAD (MAD 0.1 -> gate 0.3): not significant.
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(doc(1.0, 0.1)), obs::json_parse(doc(1.08, 0.1)),
      wall_only());
  EXPECT_FALSE(report.has_regression());
}

TEST(CompareBench, SmallRelativeChangeStaysQuietEvenWithTinyMad) {
  // +2% with near-zero MAD: trips the MAD gate but not the 5% gate.
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(doc(1.0, 0.0001)), obs::json_parse(doc(1.02, 0.0001)),
      wall_only());
  EXPECT_FALSE(report.has_regression());
}

TEST(CompareBench, ImprovementNeverFails) {
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(doc(1.5, 0.05)), obs::json_parse(doc(1.0, 0.05)),
      wall_only());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_FALSE(report.has_regression());
  EXPECT_TRUE(report.deltas[0].improvement);
}

TEST(CompareBench, ThresholdsAreConfigurable) {
  // +8% within default gates becomes a regression at k=0.5, pct=2%.
  obs::CompareOptions tight = wall_only();
  tight.k_mad = 0.5;
  tight.min_rel = 0.02;
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(doc(1.0, 0.1)), obs::json_parse(doc(1.08, 0.1)), tight);
  EXPECT_TRUE(report.has_regression());
}

TEST(CompareBench, SysTimeIsInformationalByDefault) {
  // A 10x sys_s blow-up at the tens-of-milliseconds scale is kernel noise
  // on small benches: under default options it must be reported (verdict
  // "info") but never gate.  Naming it in an explicit metric list restores
  // gating.
  auto with_sys = [](double wall, double sys) {
    return std::string(R"({"schema":"cts.bench.v1","benches":{"fig9":)") +
           R"({"metrics":{"wall_s":{"median":)" + std::to_string(wall) +
           R"(,"mad":0.001},"sys_s":{"median":)" + std::to_string(sys) +
           R"(,"mad":0.001}}}}})";
  };
  const obs::JsonValue baseline = obs::json_parse(with_sys(1.0, 0.01));
  const obs::JsonValue candidate = obs::json_parse(with_sys(1.0, 0.1));

  const obs::CompareReport report =
      obs::compare_bench_reports(baseline, candidate);
  EXPECT_FALSE(report.has_regression());
  bool saw_sys = false;
  for (const obs::MetricDelta& d : report.deltas) {
    if (d.metric != "sys_s") continue;
    saw_sys = true;
    EXPECT_TRUE(d.informational);
    EXPECT_FALSE(d.regression);
    EXPECT_FALSE(d.improvement);
    EXPECT_NEAR(d.rel, 9.0, 1e-12);
  }
  EXPECT_TRUE(saw_sys);

  obs::CompareOptions gate_sys;
  gate_sys.metrics = {"sys_s"};
  gate_sys.info_metrics.clear();
  const obs::CompareReport gated =
      obs::compare_bench_reports(baseline, candidate, gate_sys);
  EXPECT_TRUE(gated.has_regression());
}

TEST(CompareBench, MissingBenchesAreNotedNotFatal) {
  const std::string two_benches =
      R"({"schema":"cts.bench.v1","benches":{)"
      R"("fig9":{"metrics":{"wall_s":{"median":1.0,"mad":0.1}}},)"
      R"("table1":{"metrics":{"wall_s":{"median":0.5,"mad":0.01}}}}})";
  const obs::CompareReport report = obs::compare_bench_reports(
      obs::json_parse(two_benches), obs::json_parse(doc(1.0, 0.1)),
      wall_only());
  EXPECT_FALSE(report.has_regression());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("table1"), std::string::npos);
}

}  // namespace
