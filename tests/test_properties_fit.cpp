// Property sweeps over the fitting and asymptotic machinery.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/acf_model.hpp"
#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/weibull_lrd.hpp"
#include "cts/fit/dar_fit.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/proc/marginal.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/rng.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cp = cts::proc;
namespace cu = cts::util;

class DarFitRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DarFitRoundTripTest, HigherOrderFitsStayExactAndFeasible) {
  // Fit DAR(p) to the Z^a ACF for p up to 8; each fit must reproduce its
  // targets exactly with a valid probability vector.
  const auto [a, p_int] = GetParam();
  const auto p = static_cast<std::size_t>(p_int);
  const cf::ModelSpec z = cf::make_za(a);
  std::vector<double> targets(p);
  for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = z.acf->at(k);
  const cf::DarFit fit = cf::fit_dar(targets);
  EXPECT_LT(fit.residual, 1e-8) << "a=" << a << " p=" << p;
  EXPECT_GE(fit.rho, 0.0);
  EXPECT_LT(fit.rho, 1.0);
  double sum = 0.0;
  for (const double ai : fit.lag_probs) {
    EXPECT_GE(ai, 0.0);
    sum += ai;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OrderAndModelGrid, DarFitRoundTripTest,
    ::testing::Combine(::testing::Values(0.7, 0.9, 0.975),
                       ::testing::Values(1, 2, 3, 5, 8)));

class BrMonotonicityTest : public ::testing::TestWithParam<const char*> {
 protected:
  cf::ModelSpec model() const {
    const std::string name = GetParam();
    if (name == "Z^0.9") return cf::make_za(0.9);
    if (name == "L") return cf::make_l();
    if (name == "FARIMA") return cf::make_farima(0.35);
    if (name == "MGinf") return cf::make_mginf(1.4);
    return cf::make_dar_matched_to_za(0.975, 2);
  }
};

TEST_P(BrMonotonicityTest, BopMonotoneInBufferBandwidthAndN) {
  const cf::ModelSpec spec = model();
  // In buffer.
  {
    cc::RateFunction rate(spec.acf, spec.mean, spec.variance, 530.0);
    double prev = 1.0;
    for (const double b : {0.0, 40.0, 160.0, 640.0}) {
      const double bop = cc::br_log10_bop(rate, b, 30).log10_bop;
      EXPECT_LE(bop, prev + 1e-12) << spec.name << " b=" << b;
      prev = bop;
    }
  }
  // In bandwidth.
  {
    double prev = 1.0;
    for (const double c : {515.0, 525.0, 540.0, 560.0}) {
      cc::RateFunction rate(spec.acf, spec.mean, spec.variance, c);
      const double bop = cc::br_log10_bop(rate, 100.0, 30).log10_bop;
      EXPECT_LT(bop, prev) << spec.name << " c=" << c;
      prev = bop;
    }
  }
  // In N (per-source b, c fixed: more multiplexing gain).
  {
    cc::RateFunction rate(spec.acf, spec.mean, spec.variance, 530.0);
    double prev = 1.0;
    for (const std::size_t n : {10u, 30u, 90u}) {
      const double bop = cc::br_log10_bop(rate, 100.0, n).log10_bop;
      EXPECT_LT(bop, prev) << spec.name << " n=" << n;
      prev = bop;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ModelGrid, BrMonotonicityTest,
                         ::testing::Values("Z^0.9", "L", "FARIMA", "MGinf",
                                           "DAR2"));

class WeibullAgreementTest : public ::testing::TestWithParam<double> {};

TEST_P(WeibullAgreementTest, TracksExactBrAtLargeBuffers) {
  // Eq. (6) vs the exact B-R rate across the Hurst range.
  const double h = GetParam();
  const double weight = 0.9;
  cc::WeibullLrdParams params;
  params.hurst = h;
  params.weight = weight;
  params.mean = 500.0;
  params.variance = 5000.0;
  params.bandwidth = 538.0;
  cc::RateFunction rate(std::make_shared<cc::ExactLrdAcf>(h, weight), 500.0,
                        5000.0, 538.0);
  const double b = 5000.0;
  const double br = cc::br_log10_bop(rate, b, 30).log10_bop;
  const double wb = cc::weibull_log10_bop(params, 30, 30.0 * b);
  EXPECT_NEAR(wb / br, 1.0, 0.06) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, WeibullAgreementTest,
                         ::testing::Values(0.6, 0.7, 0.8, 0.9));

TEST(LogNormalMarginal, MomentsAndTail) {
  const cp::LogNormalMarginal marginal(500.0, 5000.0);
  cu::Xoshiro256pp rng(3);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(marginal.sample(rng));
  EXPECT_NEAR(acc.mean(), 500.0, 2.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 200.0);
  // Heavier right tail than Gaussian at matched moments.
  const cp::GaussianMarginal gauss(500.0, 5000.0);
  const double threshold = 500.0 + 4.5 * std::sqrt(5000.0);
  int ln_exceed = 0;
  int g_exceed = 0;
  for (int i = 0; i < 300000; ++i) {
    if (marginal.sample(rng) > threshold) ++ln_exceed;
    if (gauss.sample(rng) > threshold) ++g_exceed;
  }
  EXPECT_GT(ln_exceed, g_exceed);
  // All samples positive by construction.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(marginal.sample(rng), 0.0);
  }
}

TEST(LogNormalMarginal, ParametersFromMoments) {
  const cp::LogNormalMarginal marginal(500.0, 5000.0);
  // Round-trip the closed forms.
  const double s2 = marginal.sigma_log() * marginal.sigma_log();
  EXPECT_NEAR(std::exp(marginal.mu_log() + 0.5 * s2), 500.0, 1e-9);
  EXPECT_NEAR((std::exp(s2) - 1.0) *
                  std::exp(2.0 * marginal.mu_log() + s2),
              5000.0, 1e-6);
}
