// Unit tests for the cell-granularity multiplexer, cross-validated against
// the fluid recursion.

#include "cts/sim/cell_mux.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/ar1.hpp"
#include "cts/proc/gaussian_quantizer.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

class ConstantSource final : public cp::FrameSource {
 public:
  explicit ConstantSource(double value) : value_(value) {}
  double next_frame() override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::unique_ptr<cp::FrameSource> clone(std::uint64_t) const override {
    return std::make_unique<ConstantSource>(value_);
  }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

}  // namespace

TEST(CellMux, UnderloadLosesNothing) {
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(400.0));
  cm::CellRunConfig config;
  config.frames = 100;
  config.warmup_frames = 0;
  config.capacity_cells = 500;
  config.buffer_cells = 10;
  const cm::CellRunResult result = cm::CellMux::run(sources, config);
  EXPECT_EQ(result.arrived_cells, 400u * 100u);
  EXPECT_EQ(result.lost_cells, 0u);
}

TEST(CellMux, SteadyOverloadLosesExcessRate) {
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(600.0));
  cm::CellRunConfig config;
  config.frames = 200;
  config.warmup_frames = 20;
  config.capacity_cells = 500;
  config.buffer_cells = 5;
  const cm::CellRunResult result = cm::CellMux::run(sources, config);
  // CLR converges to 1/6 (100 lost of 600 per frame) up to edge effects.
  EXPECT_NEAR(result.clr(), 1.0 / 6.0, 0.01);
}

TEST(CellMux, AgreesWithFluidOnStochasticWorkload) {
  // Same seeds, same frame workload: cell-level CLR should approach the
  // fluid CLR (they differ by sub-frame granularity only).
  cp::Ar1Params p;
  p.phi = 0.8;
  p.mean = 500.0;
  p.variance = 5000.0;
  const std::uint64_t kSeed = 4242;

  std::vector<std::unique_ptr<cp::FrameSource>> cell_sources;
  std::vector<std::unique_ptr<cp::FrameSource>> fluid_sources;
  for (int i = 0; i < 5; ++i) {
    cell_sources.push_back(std::make_unique<cp::GaussianQuantizer>(
        std::make_unique<cp::Ar1Source>(p, kSeed + i)));
    fluid_sources.push_back(std::make_unique<cp::GaussianQuantizer>(
        std::make_unique<cp::Ar1Source>(p, kSeed + i)));
  }

  cm::CellRunConfig cell_config;
  cell_config.frames = 20000;
  cell_config.warmup_frames = 100;
  cell_config.capacity_cells = 5 * 520;
  cell_config.buffer_cells = 500;
  const cm::CellRunResult cell = cm::CellMux::run(cell_sources, cell_config);

  cm::FluidRunConfig fluid_config;
  fluid_config.frames = 20000;
  fluid_config.warmup_frames = 100;
  fluid_config.capacity_cells = 5 * 520.0;
  fluid_config.buffer_sizes_cells = {500.0};
  const cm::FluidRunResult fluid = cm::FluidMux::run(fluid_sources,
                                                     fluid_config);

  const double cell_clr = cell.clr();
  const double fluid_clr = fluid.clr[0].clr(fluid.arrived_cells);
  ASSERT_GT(cell_clr, 0.0);
  ASSERT_GT(fluid_clr, 0.0);
  // Within-frame granularity effects keep these within a factor ~2 at this
  // loss level; the fluid model slightly underestimates loss.
  EXPECT_LT(std::abs(std::log10(cell_clr) - std::log10(fluid_clr)), 0.35);
}

TEST(CellMux, PeakQueueBoundedByBuffer) {
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(700.0));
  cm::CellRunConfig config;
  config.frames = 50;
  config.warmup_frames = 0;
  config.capacity_cells = 500;
  config.buffer_cells = 64;
  const cm::CellRunResult result = cm::CellMux::run(sources, config);
  EXPECT_LE(result.peak_queue_cells, 64u);
  EXPECT_GT(result.lost_cells, 0u);
}

TEST(CellMux, DelayStatisticsBoundedByBuffer) {
  // The paper equates buffer size with maximum delay: an admitted cell
  // waits at most (buffer) service times, i.e. buffer/capacity frames.
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(650.0));
  cm::CellRunConfig config;
  config.frames = 200;
  config.warmup_frames = 10;
  config.capacity_cells = 500;
  config.buffer_cells = 100;
  const cm::CellRunResult result = cm::CellMux::run(sources, config);
  const double max_delay_bound =
      static_cast<double>(config.buffer_cells + 1) /
      static_cast<double>(config.capacity_cells);
  EXPECT_GT(result.max_delay_frames, 0.0);
  EXPECT_LE(result.max_delay_frames, max_delay_bound + 1e-12);
  // Persistent overload keeps the queue near full: mean queue on arrival
  // approaches the buffer size.
  EXPECT_GT(result.mean_queue_on_arrival, 50.0);
  EXPECT_LE(result.mean_queue_on_arrival, 100.0);
}

TEST(CellMux, UnderloadHasTinyDelays) {
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(100.0));
  cm::CellRunConfig config;
  config.frames = 100;
  config.warmup_frames = 0;
  config.capacity_cells = 500;
  config.buffer_cells = 1000;
  const cm::CellRunResult result = cm::CellMux::run(sources, config);
  // Deterministically smoothed underload: queue rarely exceeds a cell.
  EXPECT_LT(result.mean_queue_on_arrival, 2.0);
  EXPECT_LT(result.max_delay_frames, 0.02);
}

TEST(CellMux, RejectsBadConfig) {
  std::vector<std::unique_ptr<cp::FrameSource>> empty;
  cm::CellRunConfig config;
  EXPECT_THROW(cm::CellMux::run(empty, config), cu::InvalidArgument);
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  sources.push_back(std::make_unique<ConstantSource>(1.0));
  config.capacity_cells = 0;
  EXPECT_THROW(cm::CellMux::run(sources, config), cu::InvalidArgument);
}
