// ResourceProbe / PerfCounterGroup / PerfReport: the probe must measure a
// busy region (wall and CPU time move, RSS is positive), the counter group
// must either deliver plausible counts or degrade to a recorded reason —
// never error — and the serialised cts.perf.v1 report must pass the strict
// JSON validator whichever path was taken.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "cts/obs/json.hpp"
#include "cts/obs/perf.hpp"

namespace obs = cts::obs;

namespace {

/// Burns CPU long enough for getrusage's clock granularity to register.
volatile std::uint64_t sink = 0;
void busy_work() {
  std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < 30'000'000; ++i) acc = acc * 2862933555777941757ULL + 3037000493ULL;
  sink = acc;
}

TEST(ResourceProbe, MeasuresBusyRegion) {
  obs::ResourceProbe probe;
  busy_work();
  const obs::ResourceUsage u = probe.sample();
  EXPECT_GT(u.wall_s, 0.0);
  EXPECT_LT(u.wall_s, 60.0);
  EXPECT_GT(u.user_s + u.sys_s, 0.0);
  EXPECT_GT(u.max_rss_kb, 0);
  EXPECT_GE(u.ctx_voluntary, 0);
  EXPECT_GE(u.ctx_involuntary, 0);
}

TEST(ResourceProbe, RestartRearmsDeltas) {
  obs::ResourceProbe probe;
  busy_work();
  probe.restart();
  const obs::ResourceUsage u = probe.sample();
  // After restart the accumulated busy time must not be attributed.
  EXPECT_LT(u.user_s + u.sys_s, 0.5);
}

TEST(PerfCounterGroup, CountsOrDegradesGracefully) {
  obs::PerfCounterGroup group;
  // The facade always has a backend: perf_event, or the tsc fallback.
  ASSERT_TRUE(group.available());
  EXPECT_TRUE(group.unavailable_reason().empty());
  group.start();
  busy_work();
  const obs::HwCounters hw = group.stop();
  ASSERT_TRUE(hw.available);
  EXPECT_TRUE(hw.unavailable_reason.empty());
  EXPECT_FALSE(hw.values.empty());
  EXPECT_EQ(hw.backend, group.backend_name());
  if (hw.backend == "perf_event") {
    // The busy loop retires tens of millions of instructions.
    EXPECT_GT(hw.value("instructions"), 1'000'000u);
    EXPECT_GT(hw.ipc(), 0.0);
  } else {
    // Degraded path: cycles only, with the degradation recorded as a note.
    EXPECT_EQ(hw.backend, "tsc");
    EXPECT_GT(hw.value("cycles"), 0u);
    EXPECT_EQ(hw.value("instructions"), 0u);
    EXPECT_DOUBLE_EQ(hw.ipc(), 0.0);
    EXPECT_FALSE(hw.note.empty());
  }
}

TEST(SamplerBackend, TscFallbackAlwaysCounts) {
  const auto backend = obs::make_tsc_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "tsc");
  EXPECT_TRUE(backend->available());
  EXPECT_TRUE(backend->unavailable_reason().empty());
  backend->start();
  busy_work();
  const obs::HwCounters hw = backend->stop();
  EXPECT_TRUE(hw.available);
  EXPECT_EQ(hw.backend, "tsc");
  // The busy loop takes well over a microsecond under either tick source.
  EXPECT_GT(hw.value("cycles"), 1'000u);
  EXPECT_FALSE(hw.note.empty());
}

TEST(SamplerBackend, PerfEventReportsAvailabilityConsistently) {
  const auto backend = obs::make_perf_event_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "perf_event");
  backend->start();
  busy_work();
  const obs::HwCounters hw = backend->stop();
  EXPECT_EQ(hw.available, backend->available());
  if (!backend->available()) {
    // Degradation is a recorded reason, not an error.
    EXPECT_FALSE(hw.unavailable_reason.empty());
    EXPECT_TRUE(hw.values.empty());
  }
}

TEST(PerfReport, SerialisesToValidJson) {
  obs::PerfReport report;
  report.info.emplace_back("run_id", "unit_test");
  report.info.emplace_back("bench_kind", "sim");
  obs::ResourceProbe probe;
  obs::PerfCounterGroup group;
  group.start();
  busy_work();
  report.hw = group.stop();
  report.resources = probe.sample();
  report.spans.push_back({"fluid_mux.run", 4, 1000, 800, 100, 400});
  report.spans.push_back({"replication", 2, 1200, 200, 500, 700});

  std::ostringstream os;
  report.write_json(os);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(os.str(), &error)) << error << os.str();

  const obs::JsonValue doc = obs::json_parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "cts.perf.v1");
  EXPECT_EQ(doc.at("info").at("run_id").as_string(), "unit_test");
  EXPECT_GT(doc.at("resources").at("wall_s").as_number(), 0.0);
  EXPECT_GT(doc.at("resources").at("max_rss_kb").as_number(), 0.0);
  const obs::JsonValue& hw = doc.at("hw");
  if (hw.at("available").as_bool()) {
    if (hw.at("backend").as_string() == "perf_event") {
      EXPECT_NE(hw.at("counters").find("instructions"), nullptr);
    } else {
      EXPECT_EQ(hw.at("backend").as_string(), "tsc");
      EXPECT_NE(hw.at("counters").find("cycles"), nullptr);
      EXPECT_FALSE(hw.at("note").as_string().empty());
    }
  } else {
    EXPECT_FALSE(hw.at("reason").as_string().empty());
  }
  // Phase rollup: fluid_mux (self 800) sorts before replication (self 200).
  const obs::JsonValue& phases = doc.at("phases");
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases.at(std::size_t{0}).at("phase").as_string(), "fluid_mux");
  EXPECT_DOUBLE_EQ(phases.at(std::size_t{0}).at("self_us").as_number(), 800.0);
}

TEST(PerfReport, WriteFailsGracefullyOnBadPath) {
  obs::PerfReport report;
  EXPECT_FALSE(report.write("/nonexistent_dir_cts_test/perf.json"));
}

}  // namespace
