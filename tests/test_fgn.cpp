// Unit tests for the fractional Gaussian noise generators.

#include "cts/proc/fgn.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(FgnAcf, HalfHurstIsWhite) {
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(cp::fgn_acf(k, 0.5), 0.0, 1e-12) << "lag " << k;
  }
  EXPECT_DOUBLE_EQ(cp::fgn_acf(0, 0.5), 1.0);
}

TEST(FgnAcf, PositiveAndDecreasingForLrd) {
  double prev = 1.0;
  for (std::size_t k = 1; k <= 100; ++k) {
    const double r = cp::fgn_acf(k, 0.8);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(FgnAcf, TailScalesAsPowerLaw) {
  const double h = 0.85;
  const double r100 = cp::fgn_acf(100, h);
  const double r800 = cp::fgn_acf(800, h);
  EXPECT_NEAR(r800 / r100, std::pow(8.0, 2.0 * h - 2.0), 1e-3);
}

TEST(FgnParams, Validation) {
  cp::FgnParams p;
  p.hurst = 0.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p.hurst = 0.8;
  p.variance = -1.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

namespace {

cp::FgnParams standard(double h) {
  cp::FgnParams p;
  p.hurst = h;
  p.mean = 0.0;
  p.variance = 1.0;
  return p;
}

}  // namespace

TEST(FgnHosking, MomentsAndAcf) {
  cp::FgnHosking source(standard(0.8), 123);
  std::vector<double> trace(8192);
  for (auto& x : trace) x = source.next_frame();
  cu::MomentAccumulator acc;
  for (const double x : trace) acc.add(x);
  // LRD sample mean has sd ~ n^{H-1} = 8192^{-0.2} ~ 0.165: 3-sigma bound.
  EXPECT_NEAR(acc.mean(), 0.0, 0.5);
  EXPECT_NEAR(acc.variance(), 1.0, 0.25);
  const std::vector<double> r = cs::autocorrelation(trace, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], cp::fgn_acf(k, 0.8), 0.08) << "lag " << k;
  }
}

TEST(FgnDaviesHarte, MomentsAndAcf) {
  cp::FgnDaviesHarte source(standard(0.8), 4096, 321);
  std::vector<double> trace(65536);
  for (auto& x : trace) x = source.next_frame();
  cu::MomentAccumulator acc;
  for (const double x : trace) acc.add(x);
  EXPECT_NEAR(acc.mean(), 0.0, 0.1);
  EXPECT_NEAR(acc.variance(), 1.0, 0.1);
  const std::vector<double> r = cs::autocorrelation(trace, 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(r[k], cp::fgn_acf(k, 0.8), 0.05) << "lag " << k;
  }
}

TEST(FgnDaviesHarte, WhiteCaseHasNoCorrelation) {
  cp::FgnParams p = standard(0.5001);  // H=0.5 exactly is excluded by (0,1) LRD check? No: (0,1) allowed.
  cp::FgnDaviesHarte source(p, 1024, 5);
  std::vector<double> trace(32768);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 3);
  for (std::size_t k = 1; k <= 3; ++k) {
    EXPECT_NEAR(r[k], 0.0, 0.03);
  }
}

TEST(FgnDaviesHarte, BlockLengthRoundsToPow2) {
  cp::FgnDaviesHarte source(standard(0.7), 1000, 1);
  EXPECT_EQ(source.block_length(), 1024u);
}

TEST(FgnGenerators, MarginalScaling) {
  cp::FgnParams p;
  p.hurst = 0.75;
  p.mean = 500.0;
  p.variance = 5000.0;
  cp::FgnDaviesHarte source(p, 2048, 9);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 32768; ++i) acc.add(source.next_frame());
  EXPECT_NEAR(acc.mean(), 500.0, 10.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 800.0);
}

TEST(FgnGenerators, CloneDeterminism) {
  cp::FgnDaviesHarte dh(standard(0.8), 256, 1);
  auto a = dh.clone(55);
  auto b = dh.clone(55);
  for (int i = 0; i < 600; ++i) {  // spans multiple blocks
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
  cp::FgnHosking hos(standard(0.8), 1);
  auto c = hos.clone(55);
  auto d = hos.clone(55);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(c->next_frame(), d->next_frame());
  }
}
