// Unit tests for histogram and Kolmogorov-Smirnov normality check.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/stats/histogram.hpp"
#include "cts/stats/ks.hpp"
#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cs = cts::stats;
namespace cu = cts::util;

TEST(Histogram, BinningAndBounds) {
  cs::Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);   // bin 0
  hist.add(9.99);  // bin 4
  hist.add(-1.0);  // underflow
  hist.add(10.0);  // overflow (hi-exclusive)
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_DOUBLE_EQ(hist.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_high(1), 4.0);
}

TEST(Histogram, DensityIntegratesToCoveredFraction) {
  cs::Histogram hist(0.0, 1.0, 10);
  cu::Xoshiro256pp rng(3);
  for (int i = 0; i < 100000; ++i) hist.add(rng.uniform01());
  double integral = 0.0;
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    integral += hist.density(b) * (hist.bin_high(b) - hist.bin_low(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(cs::Histogram(1.0, 1.0, 5), cu::InvalidArgument);
  EXPECT_THROW(cs::Histogram(0.0, 1.0, 0), cu::InvalidArgument);
  cs::Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(5), std::out_of_range);
  EXPECT_THROW(h.bin_low(5), cu::InvalidArgument);
}

TEST(Histogram, RenderProducesBars) {
  cs::Histogram hist(0.0, 2.0, 2);
  hist.add(0.5);
  hist.add(0.6);
  hist.add(1.5);
  const std::string out = hist.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(KolmogorovQ, KnownValues) {
  EXPECT_DOUBLE_EQ(cs::kolmogorov_q(0.0), 1.0);
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(cs::kolmogorov_q(1.36), 0.049, 0.002);
  EXPECT_LT(cs::kolmogorov_q(2.0), 0.001);
}

TEST(KsTest, AcceptsTrueNormalSample) {
  cu::Xoshiro256pp rng(41);
  cu::NormalSampler normal;
  std::vector<double> sample(20000);
  for (auto& x : sample) x = 500.0 + std::sqrt(5000.0) * normal(rng);
  const cs::KsResult result = cs::ks_test_normal(sample, 500.0, 5000.0);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.02);
}

TEST(KsTest, RejectsShiftedSample) {
  cu::Xoshiro256pp rng(43);
  cu::NormalSampler normal;
  std::vector<double> sample(20000);
  for (auto& x : sample) x = 520.0 + std::sqrt(5000.0) * normal(rng);
  const cs::KsResult result = cs::ks_test_normal(sample, 500.0, 5000.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, RejectsWrongVarianceSample) {
  cu::Xoshiro256pp rng(47);
  cu::NormalSampler normal;
  std::vector<double> sample(20000);
  for (auto& x : sample) x = 500.0 + std::sqrt(20000.0) * normal(rng);
  const cs::KsResult result = cs::ks_test_normal(sample, 500.0, 5000.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, RejectsDegenerateInput) {
  EXPECT_THROW(cs::ks_test_normal({}, 0.0, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cs::ks_test_normal({1.0}, 0.0, 0.0), cu::InvalidArgument);
}
