// Unit tests for the Gaussian-to-cells quantizer.

#include "cts/proc/gaussian_quantizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/ar1.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

std::unique_ptr<cp::FrameSource> gaussian(double mean, double variance,
                                          std::uint64_t seed) {
  cp::Ar1Params p;
  p.phi = 0.0;  // i.i.d. Gaussian
  p.mean = mean;
  p.variance = variance;
  return std::make_unique<cp::Ar1Source>(p, seed);
}

}  // namespace

TEST(GaussianQuantizer, OutputsAreNonNegativeIntegers) {
  cp::GaussianQuantizer q(gaussian(500.0, 5000.0, 3));
  for (int i = 0; i < 10000; ++i) {
    const double x = q.next_frame();
    ASSERT_GE(x, 0.0);
    ASSERT_DOUBLE_EQ(x, std::round(x));
  }
}

TEST(GaussianQuantizer, PaperMarginalAlmostNeverClamps) {
  cp::GaussianQuantizer q(gaussian(500.0, 5000.0, 5));
  // mu/sigma ~ 7.07: clamp probability ~ 7.8e-13.
  EXPECT_LT(q.clamp_probability(), 1e-11);
  for (int i = 0; i < 100000; ++i) q.next_frame();
  EXPECT_EQ(q.clamp_count(), 0u);
}

TEST(GaussianQuantizer, LowMeanClampsOften) {
  cp::GaussianQuantizer q(gaussian(0.0, 100.0, 7));
  int frames = 20000;
  for (int i = 0; i < frames; ++i) q.next_frame();
  // Half of a zero-mean Gaussian is negative.
  EXPECT_NEAR(static_cast<double>(q.clamp_count()) / frames, 0.5, 0.03);
  EXPECT_NEAR(q.clamp_probability(), 0.5, 1e-12);
}

TEST(GaussianQuantizer, PreservesReportedMoments) {
  cp::GaussianQuantizer q(gaussian(500.0, 5000.0, 1));
  EXPECT_DOUBLE_EQ(q.mean(), 500.0);
  EXPECT_DOUBLE_EQ(q.variance(), 5000.0);
  EXPECT_NE(q.name().find("quantized"), std::string::npos);
}

TEST(GaussianQuantizer, RejectsNullInner) {
  EXPECT_THROW(cp::GaussianQuantizer(nullptr), cu::InvalidArgument);
}

TEST(GaussianQuantizer, CloneDeterminism) {
  cp::GaussianQuantizer q(gaussian(500.0, 5000.0, 1));
  auto a = q.clone(11);
  auto b = q.clone(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}
