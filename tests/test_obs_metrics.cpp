#include "cts/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

TEST(MetricsRegistry, CounterAccumulatesAndDefaultsToZero) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.counter("missing"), 0u);
  reg.add("frames");
  reg.add("frames", 41);
  EXPECT_EQ(reg.counter("frames"), 42u);
}

TEST(MetricsRegistry, GaugeSetModeLastWriteWins) {
  obs::MetricsRegistry reg;
  EXPECT_FALSE(reg.has_gauge("threads"));
  EXPECT_DOUBLE_EQ(reg.gauge_value("threads", -1.0), -1.0);
  reg.gauge("threads", 8.0);
  reg.gauge("threads", 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("threads"), 4.0);
  EXPECT_TRUE(reg.has_gauge("threads"));
}

TEST(MetricsRegistry, GaugeMaxModeKeepsPeak) {
  obs::MetricsRegistry reg;
  reg.gauge("peak", 10.0, obs::GaugeMode::kMax);
  reg.gauge("peak", 3.0, obs::GaugeMode::kMax);
  reg.gauge("peak", 17.0, obs::GaugeMode::kMax);
  EXPECT_DOUBLE_EQ(reg.gauge_value("peak"), 17.0);
}

TEST(MetricsRegistry, CompensatedSumSurvivesMagnitudeSpread) {
  obs::MetricsRegistry reg;
  // 1e16 + 1.0 + ... + 1.0 loses every unit in naive double addition.
  reg.add_sum("cells", 1e16);
  for (int i = 0; i < 1000; ++i) reg.add_sum("cells", 1.0);
  EXPECT_DOUBLE_EQ(reg.sum("cells") - 1e16, 1000.0);
}

TEST(Histogram, UpperInclusiveBucketsAndStats) {
  obs::HistogramCell h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (upper-inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e6);    // overflow bucket
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.stats().count(), 5u);
  EXPECT_DOUBLE_EQ(h.stats().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.stats().max(), 1e6);
}

TEST(Histogram, MergeRequiresMatchingEdges) {
  obs::HistogramCell a({1.0, 2.0});
  obs::HistogramCell b({1.0, 3.0});
  b.observe(0.5);
  EXPECT_THROW(a.merge(b), cts::util::InvalidArgument);
}

TEST(Histogram, MergeSumsBucketsAndStats) {
  obs::HistogramCell a({1.0, 2.0});
  obs::HistogramCell b({1.0, 2.0});
  a.observe(0.5);
  a.observe(1.5);
  b.observe(1.5);
  b.observe(9.0);
  a.merge(b);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 2u);
  EXPECT_EQ(a.buckets()[2], 1u);
  EXPECT_EQ(a.stats().count(), 4u);
  EXPECT_DOUBLE_EQ(a.stats().mean(), (0.5 + 1.5 + 1.5 + 9.0) / 4.0);
}

TEST(MetricsShard, RegistryObserveCreatesHistogramWithGivenEdges) {
  obs::MetricsRegistry reg;
  reg.observe("wall_ms", 2.0, {1.0, 3.0});
  reg.observe("wall_ms", 10.0);  // edges fixed by first observation
  obs::HistogramSnapshot snap;
  ASSERT_TRUE(reg.histogram("wall_ms", &snap));
  EXPECT_EQ(snap.count, 2u);
  ASSERT_EQ(snap.edges.size(), 2u);
  EXPECT_EQ(snap.buckets[1], 1u);  // 2.0 <= 3.0
  EXPECT_EQ(snap.buckets[2], 1u);  // 10.0 overflows
}

TEST(MetricsShard, ConcurrentShardMergeIsDeterministic) {
  // Eight workers each build a shard with integer-valued metrics and merge
  // it; every interleaving must produce identical registry contents.
  for (int round = 0; round < 3; ++round) {
    obs::MetricsRegistry reg;
    std::vector<std::thread> pool;
    for (int t = 0; t < 8; ++t) {
      pool.emplace_back([&reg, t]() {
        obs::MetricsShard shard;
        for (int i = 0; i < 1000; ++i) {
          shard.add("events");
          shard.add_sum("cells", 3.0);
          shard.observe("size", static_cast<double>(i % 7), {2.0, 5.0});
        }
        shard.gauge("peak", static_cast<double>(t), obs::GaugeMode::kMax);
        reg.merge(shard);
      });
    }
    for (auto& t : pool) t.join();

    EXPECT_EQ(reg.counter("events"), 8000u);
    EXPECT_DOUBLE_EQ(reg.sum("cells"), 24000.0);
    EXPECT_DOUBLE_EQ(reg.gauge_value("peak"), 7.0);
    obs::HistogramSnapshot snap;
    ASSERT_TRUE(reg.histogram("size", &snap));
    EXPECT_EQ(snap.count, 8000u);
    // i % 7 in 0..6: values <= 2 are {0,1,2}, <= 5 are {3,4,5}, above: {6}.
    EXPECT_EQ(snap.buckets[0], 8u * (143u + 143u + 143u));
    EXPECT_EQ(snap.buckets[2], 8u * 142u);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 6.0);
  }
}

TEST(MetricsRegistry, WriteJsonIsWellFormedAndComplete) {
  obs::MetricsRegistry reg;
  reg.add("a.count", 3);
  reg.add_sum("b.total", 1.5);
  reg.gauge("c.value", 2.25);
  reg.observe("d.hist", 0.5, {1.0});
  std::ostringstream os;
  reg.write_json(os);
  std::string error;
  EXPECT_TRUE(obs::json_parse_check(os.str(), &error)) << error;
  EXPECT_NE(os.str().find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(os.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(os.str().find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  obs::MetricsRegistry reg;
  reg.add("x");
  reg.gauge("y", 1.0);
  reg.reset();
  EXPECT_EQ(reg.counter("x"), 0u);
  EXPECT_FALSE(reg.has_gauge("y"));
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  obs::MetricsRegistry& a = obs::MetricsRegistry::global();
  obs::MetricsRegistry& b = obs::MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
