// Unit tests for cts/util/math.hpp.

#include "cts/util/math.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cu = cts::util;

TEST(SecondCentralDifference, MatchesDirectEvaluationSmallK) {
  for (const double e : {1.5, 1.72, 1.8, 1.9}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{10}, std::size_t{100}}) {
      const double kd = static_cast<double>(k);
      const double direct = std::pow(kd + 1, e) - 2 * std::pow(kd, e) +
                            std::pow(kd - 1, e);
      EXPECT_NEAR(cu::second_central_difference_pow(k, e), direct,
                  1e-12 * std::abs(direct) + 1e-15)
          << "e=" << e << " k=" << k;
    }
  }
}

TEST(SecondCentralDifference, SeriesBranchContinuousAtSwitch) {
  // The implementation switches to a series expansion above k = 1e4; the
  // two branches must agree to high relative accuracy near the boundary.
  const double e = 1.8;
  const double below = cu::second_central_difference_pow(9999, e);
  const double above = cu::second_central_difference_pow(10001, e);
  // Interpolate the expected smooth behaviour: ratio of consecutive values
  // ~ (k2/k1)^(e-2).
  const double expected_ratio = std::pow(10001.0 / 9999.0, e - 2.0);
  EXPECT_NEAR(above / below, expected_ratio, 1e-6);
}

TEST(SecondCentralDifference, AtLagOneEqualsTwoToTheEMinusTwo) {
  const double e = 1.8;
  EXPECT_NEAR(cu::second_central_difference_pow(1, e),
              std::pow(2.0, e) - 2.0, 1e-12);
}

TEST(SecondCentralDifference, RejectsLagZero) {
  EXPECT_THROW(cu::second_central_difference_pow(0, 1.8),
               cu::InvalidArgument);
}

TEST(Log1mExp, MatchesNaiveInSafeRange) {
  for (const double x : {-0.5, -1.0, -2.0, -5.0}) {
    EXPECT_NEAR(cu::log1mexp(x), std::log(1.0 - std::exp(x)), 1e-12);
  }
}

TEST(Log1mExp, AccurateForTinyMagnitude) {
  const double x = -1e-10;
  // 1 - e^x ~ -x, so log1mexp ~ log(1e-10).
  EXPECT_NEAR(cu::log1mexp(x), std::log(1e-10), 1e-6);
}

TEST(Log1mExp, RejectsNonNegative) {
  EXPECT_THROW(cu::log1mexp(0.0), cu::InvalidArgument);
  EXPECT_THROW(cu::log1mexp(1.0), cu::InvalidArgument);
}

TEST(LogAddExp, BasicIdentities) {
  EXPECT_NEAR(cu::logaddexp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  EXPECT_NEAR(cu::logaddexp(-1000.0, -1000.0), -1000.0 + std::log(2.0),
              1e-9);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(cu::normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(cu::normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(cu::normal_cdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(NormalPdf, PeakValue) {
  EXPECT_NEAR(cu::normal_pdf(0.0), 0.3989422804014327, 1e-14);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (const double p : {1e-10, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99,
                         1.0 - 1e-6}) {
    const double x = cu::normal_quantile(p);
    EXPECT_NEAR(cu::normal_cdf(x), p, 1e-11) << "p=" << p;
  }
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(cu::normal_quantile(0.0), cu::InvalidArgument);
  EXPECT_THROW(cu::normal_quantile(1.0), cu::InvalidArgument);
}

TEST(Bisect, FindsKnownRoot) {
  const double root = cu::bisect(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-13);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-11);
}

TEST(Bisect, RejectsNonBracketingInterval) {
  EXPECT_THROW(
      cu::bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      cu::InvalidArgument);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  EXPECT_DOUBLE_EQ(cu::bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(LinearLeastSquares, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  const cu::LinearFit fit = cu::linear_least_squares(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearLeastSquares, NoisyLineRSquaredBelowOne) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1.0, 2.2, 2.8, 4.1};
  const cu::LinearFit fit = cu::linear_least_squares(x, y);
  EXPECT_GT(fit.r_squared, 0.9);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinearLeastSquares, RejectsDegenerateInput) {
  EXPECT_THROW(cu::linear_least_squares({1.0}, {1.0}), cu::InvalidArgument);
  EXPECT_THROW(cu::linear_least_squares({1.0, 1.0}, {1.0, 2.0}),
               cu::InvalidArgument);
  EXPECT_THROW(cu::linear_least_squares({1.0, 2.0}, {1.0}),
               cu::InvalidArgument);
}

TEST(StableSum, CancellingMagnitudes) {
  // Naive summation loses the small terms entirely.
  std::vector<double> values = {1e16, 1.0, 1.0, 1.0, 1.0, -1e16};
  EXPECT_DOUBLE_EQ(cu::stable_sum(values), 4.0);
}

TEST(IsFinite, Classification) {
  EXPECT_TRUE(cu::is_finite(1.0));
  EXPECT_FALSE(cu::is_finite(std::nan("")));
  EXPECT_FALSE(cu::is_finite(INFINITY));
}
