// Span-time attribution: self time must equal inclusive time minus the
// time of directly nested spans, per thread, and the phase rollup must
// group by the name prefix before the first dot.

#include <gtest/gtest.h>

#include <vector>

#include "cts/obs/span_stats.hpp"

namespace obs = cts::obs;

namespace {

obs::TraceEvent ev(const char* name, int tid, std::int64_t ts,
                   std::int64_t dur) {
  obs::TraceEvent e;
  e.name = name;
  e.tid = tid;
  e.ts_us = ts;
  e.dur_us = dur;
  return e;
}

const obs::SpanAgg* find(const std::vector<obs::SpanAgg>& aggs,
                         const std::string& name) {
  for (const obs::SpanAgg& a : aggs) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

TEST(SpanPhase, PrefixBeforeFirstDot) {
  EXPECT_EQ(obs::span_phase("fluid_mux.run"), "fluid_mux");
  EXPECT_EQ(obs::span_phase("replication"), "replication");
  EXPECT_EQ(obs::span_phase("proc.dar.generate"), "proc");
}

TEST(AggregateSpans, SelfTimeSubtractsNestedChildren) {
  // parent [0,100) with children [10,40) and [50,80); grandchild [12,20).
  const std::vector<obs::TraceEvent> events = {
      ev("parent", 1, 0, 100),
      ev("child", 1, 10, 30),
      ev("grandchild", 1, 12, 8),
      ev("child", 1, 50, 30),
  };
  const std::vector<obs::SpanAgg> aggs = obs::aggregate_spans(events);
  ASSERT_EQ(aggs.size(), 3u);

  const obs::SpanAgg* parent = find(aggs, "parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->count, 1u);
  EXPECT_EQ(parent->total_us, 100);
  EXPECT_EQ(parent->self_us, 40);  // 100 - 30 - 30; grandchild hits child

  const obs::SpanAgg* child = find(aggs, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 2u);
  EXPECT_EQ(child->total_us, 60);
  EXPECT_EQ(child->self_us, 52);  // 60 - 8
  EXPECT_EQ(child->min_us, 30);
  EXPECT_EQ(child->max_us, 30);

  const obs::SpanAgg* grandchild = find(aggs, "grandchild");
  ASSERT_NE(grandchild, nullptr);
  EXPECT_EQ(grandchild->self_us, 8);
}

TEST(AggregateSpans, ThreadsDoNotNestAcrossEachOther) {
  // Identical intervals on different tids must not subtract.
  const std::vector<obs::TraceEvent> events = {
      ev("a", 1, 0, 100),
      ev("b", 2, 10, 50),
  };
  const std::vector<obs::SpanAgg> aggs = obs::aggregate_spans(events);
  EXPECT_EQ(find(aggs, "a")->self_us, 100);
  EXPECT_EQ(find(aggs, "b")->self_us, 50);
}

TEST(AggregateSpans, SiblingsAtSameStartSortLongerFirst) {
  // Same start: the longer span is the parent.
  const std::vector<obs::TraceEvent> events = {
      ev("inner", 1, 0, 40),
      ev("outer", 1, 0, 100),
  };
  const std::vector<obs::SpanAgg> aggs = obs::aggregate_spans(events);
  EXPECT_EQ(find(aggs, "outer")->self_us, 60);
  EXPECT_EQ(find(aggs, "inner")->self_us, 40);
}

TEST(AggregateSpans, SortedBySelfTimeDescending) {
  const std::vector<obs::TraceEvent> events = {
      ev("small", 1, 0, 10),
      ev("big", 1, 100, 90),
  };
  const std::vector<obs::SpanAgg> aggs = obs::aggregate_spans(events);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].name, "big");
  EXPECT_EQ(aggs[1].name, "small");
}

TEST(AggregateSpans, EmptyInput) {
  EXPECT_TRUE(obs::aggregate_spans({}).empty());
  EXPECT_TRUE(obs::phase_self_times({}).empty());
}

TEST(PhaseSelfTimes, RollsUpByPrefix) {
  const std::vector<obs::TraceEvent> events = {
      ev("fluid_mux.run", 1, 0, 60),
      ev("fluid_mux.drain", 1, 70, 20),
      ev("replication", 2, 0, 50),
  };
  const std::vector<obs::PhaseSelfTime> phases =
      obs::phase_self_times(obs::aggregate_spans(events));
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "fluid_mux");
  EXPECT_EQ(phases[0].self_us, 80);
  EXPECT_EQ(phases[0].spans, 2u);
  EXPECT_EQ(phases[1].phase, "replication");
  EXPECT_EQ(phases[1].self_us, 50);
}

}  // namespace
