// Unit tests for the V^v first-lag pinning calibration.

#include "cts/fit/vv_calibration.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

TEST(FbndpFirstLag, ClosedForm) {
  // r(1) = w (2^alpha - 1).
  EXPECT_NEAR(cf::fbndp_first_lag(0.9, 0.9),
              0.9 * (std::pow(2.0, 0.9) - 1.0), 1e-12);
  EXPECT_NEAR(cf::fbndp_first_lag(1.0, 0.5), std::sqrt(2.0) - 1.0, 1e-12);
}

TEST(FbndpFirstLag, RejectsBadInput) {
  EXPECT_THROW(cf::fbndp_first_lag(0.0, 0.5), cu::InvalidArgument);
  EXPECT_THROW(cf::fbndp_first_lag(0.9, 1.0), cu::InvalidArgument);
}

TEST(CalibrateDar1, AnchorCaseIsIdentity) {
  // For v = 1 and target = (rX1 + a)/2 the calibrated a equals the anchor.
  const double rx1 = cf::fbndp_first_lag(0.9, 0.9);
  const double anchor_a = 0.8;
  const double target = 0.5 * rx1 + 0.5 * anchor_a;
  EXPECT_NEAR(cf::calibrate_dar1_coefficient(1.0, rx1, target), anchor_a,
              1e-12);
}

TEST(CalibrateDar1, PinsFirstLagAcrossV) {
  const double rx1 = cf::fbndp_first_lag(0.9, 0.9);
  const double target = 0.5 * rx1 + 0.5 * 0.8;
  for (const double v : {0.5, 0.67, 1.0, 1.5, 2.0}) {
    const double a = cf::calibrate_dar1_coefficient(v, rx1, target);
    // Mixture first lag must equal the target exactly.
    const double r1 = v / (v + 1.0) * rx1 + a / (v + 1.0);
    EXPECT_NEAR(r1, target, 1e-12) << "v=" << v;
    // And the coefficients stay near the anchor (the paper's a's are all
    // within ~0.005 of 0.8).
    EXPECT_NEAR(a, 0.8, 0.02) << "v=" << v;
  }
}

TEST(CalibrateDar1, DirectionOfAdjustment) {
  // rX1 < anchor: smaller v (more DAR weight) needs smaller a to hold the
  // same mixture lag... actually: a = (v+1) r1* - v rX1 is increasing in v
  // when r1* > rX1.  Verify the monotonicity.
  const double rx1 = cf::fbndp_first_lag(0.9, 0.9);  // ~0.779
  const double target = 0.5 * rx1 + 0.5 * 0.8;       // ~0.790 > rx1
  const double a_low = cf::calibrate_dar1_coefficient(0.67, rx1, target);
  const double a_mid = cf::calibrate_dar1_coefficient(1.0, rx1, target);
  const double a_high = cf::calibrate_dar1_coefficient(1.5, rx1, target);
  EXPECT_LT(a_low, a_mid);
  EXPECT_LT(a_mid, a_high);
}

TEST(CalibrateDar1, RejectsInfeasiblePinning) {
  // Target so high that a would exceed 1.
  EXPECT_THROW(cf::calibrate_dar1_coefficient(3.0, 0.1, 0.9),
               cu::InvalidArgument);
  // Target so low that a would go negative.
  EXPECT_THROW(cf::calibrate_dar1_coefficient(3.0, 0.9, 0.1),
               cu::InvalidArgument);
  EXPECT_THROW(cf::calibrate_dar1_coefficient(0.0, 0.5, 0.5),
               cu::InvalidArgument);
}
