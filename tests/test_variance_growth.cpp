// Unit tests for the aggregate variance V(m).

#include "cts/core/variance_growth.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

TEST(VarianceGrowth, WhiteNoiseIsLinear) {
  auto acf = std::make_shared<cc::WhiteAcf>();
  const cc::VarianceGrowth v(acf, 2.0);
  for (const std::size_t m : {std::size_t{1}, std::size_t{10},
                              std::size_t{100}}) {
    EXPECT_DOUBLE_EQ(v.at(m), 2.0 * static_cast<double>(m));
    EXPECT_DOUBLE_EQ(v.normalized(m), 1.0);
  }
}

TEST(VarianceGrowth, GeometricClosedForm) {
  // For r(k) = a^k:
  //   V(m) = sigma^2 [ m + 2 sum_{i<m} (m - i) a^i ]
  // with the closed form sum = a[(m)(1-a) - (1-a^m)]/(1-a)^2.
  const double a = 0.7;
  const double sigma2 = 3.0;
  auto acf = std::make_shared<cc::GeometricAcf>(a);
  const cc::VarianceGrowth v(acf, sigma2);
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                              std::size_t{50}}) {
    const double md = static_cast<double>(m);
    const double geo_sum =
        a * (md * (1 - a) - (1 - std::pow(a, md))) / ((1 - a) * (1 - a));
    const double expected = sigma2 * (md + 2.0 * geo_sum);
    EXPECT_NEAR(v.at(m), expected, 1e-9 * expected) << "m=" << m;
  }
}

TEST(VarianceGrowth, AtOneIsMarginalVariance) {
  auto acf = std::make_shared<cc::GeometricAcf>(0.95);
  const cc::VarianceGrowth v(acf, 5000.0);
  EXPECT_DOUBLE_EQ(v.at(1), 5000.0);
}

TEST(VarianceGrowth, LrdGrowsLikePowerLaw) {
  const double h = 0.9;
  const double w = 0.9;
  auto acf = std::make_shared<cc::ExactLrdAcf>(h, w);
  const cc::VarianceGrowth v(acf, 1.0);
  // Appendix eq. (11): V(m) ~ sigma^2 w m^{2H} for large m.
  for (const std::size_t m : {std::size_t{200}, std::size_t{1000},
                              std::size_t{5000}}) {
    const double approx = cc::lrd_variance_growth_approx(1.0, w, h, m);
    EXPECT_NEAR(v.at(m) / approx, 1.0, 0.08) << "m=" << m;
  }
}

TEST(VarianceGrowth, LrdGrowthIsSuperlinearButSubquadratic) {
  auto acf = std::make_shared<cc::ExactLrdAcf>(0.9, 0.9);
  const cc::VarianceGrowth v(acf, 1.0);
  const double ratio = v.at(4000) / v.at(1000);
  EXPECT_GT(ratio, 4.0);    // superlinear (4^1 = 4)
  EXPECT_LT(ratio, 16.0);   // subquadratic (4^2 = 16)
  EXPECT_NEAR(ratio, std::pow(4.0, 1.8), 0.5);  // ~ 4^{2H}
}

TEST(VarianceGrowth, SrdNormalizedGrowthConverges) {
  auto acf = std::make_shared<cc::GeometricAcf>(0.8);
  const cc::VarianceGrowth v(acf, 1.0);
  // V(m)/(sigma^2 m) -> 1 + 2 a/(1-a) = 9 for a = 0.8.
  EXPECT_NEAR(v.normalized(100000), 9.0, 0.01);
}

TEST(VarianceGrowth, RejectsBadInput) {
  auto acf = std::make_shared<cc::WhiteAcf>();
  EXPECT_THROW(cc::VarianceGrowth(nullptr, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cc::VarianceGrowth(acf, 0.0), cu::InvalidArgument);
  const cc::VarianceGrowth v(acf, 1.0);
  EXPECT_THROW(v.at(0), cu::InvalidArgument);
}

TEST(LrdVarianceApprox, RejectsBadHurst) {
  EXPECT_THROW(cc::lrd_variance_growth_approx(1.0, 0.9, 0.5, 10),
               cu::InvalidArgument);
}
