#include "cts/obs/progress.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

namespace obs = cts::obs;

namespace {

/// Reporter options rendering into /dev/null so tests stay silent.
obs::ProgressReporter::Options silent_options(std::FILE* sink) {
  obs::ProgressReporter::Options options;
  options.label = "test";
  options.total_units = 4;
  options.total_frames = 1000000;
  options.force_enable = true;
  options.sink = sink;
  return options;
}

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_ = std::fopen("/dev/null", "w");
    ASSERT_NE(sink_, nullptr);
    obs::force_quiet(false);
  }
  void TearDown() override {
    obs::force_quiet(false);
    std::fclose(sink_);
  }
  std::FILE* sink_ = nullptr;
};

TEST_F(ProgressTest, ThrottleCollapsesRapidTicksIntoOneRender) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.min_interval_sec = 3600.0;  // nothing after the first render
  obs::ProgressReporter reporter(options);
  for (int i = 0; i < 10000; ++i) reporter.add_frames(10);
  EXPECT_EQ(reporter.frames(), 100000u);
  EXPECT_EQ(reporter.render_count(), 1u);
}

TEST_F(ProgressTest, ZeroIntervalRendersEveryTick) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.min_interval_sec = 0.0;
  obs::ProgressReporter reporter(options);
  for (int i = 0; i < 50; ++i) reporter.add_frames(1);
  EXPECT_GE(reporter.render_count(), 50u);
}

TEST_F(ProgressTest, RenderedLineCarriesLabelUnitsAndRate) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.min_interval_sec = 0.0;
  obs::ProgressReporter reporter(options);
  reporter.add_frames(5000);
  reporter.unit_done();
  const std::string line = reporter.last_line();
  EXPECT_NE(line.find("[test]"), std::string::npos) << line;
  EXPECT_NE(line.find("reps 1/4"), std::string::npos) << line;
  EXPECT_NE(line.find("frames"), std::string::npos) << line;
  EXPECT_NE(line.find("f/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA"), std::string::npos) << line;
}

TEST_F(ProgressTest, FinishIsIdempotentAndStopsFurtherRenders) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.min_interval_sec = 0.0;
  obs::ProgressReporter reporter(options);
  reporter.add_frames(1);
  reporter.finish();
  const std::uint64_t renders = reporter.render_count();
  reporter.finish();
  reporter.add_frames(1);
  EXPECT_EQ(reporter.render_count(), renders);
}

TEST_F(ProgressTest, ForceDisableWinsOverForceEnable) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.force_disable = true;
  obs::ProgressReporter reporter(options);
  EXPECT_FALSE(reporter.enabled());
  reporter.add_frames(100);
  EXPECT_EQ(reporter.frames(), 0u);
  EXPECT_EQ(reporter.render_count(), 0u);
}

TEST_F(ProgressTest, QuietModeDisablesAutoEnabledReporters) {
  obs::force_quiet(true);
  EXPECT_TRUE(obs::quiet());
  obs::ProgressReporter::Options options;
  options.label = "quiet";
  options.sink = sink_;
  obs::ProgressReporter reporter(options);  // not forced: honours quiet()
  EXPECT_FALSE(reporter.enabled());
}

TEST_F(ProgressTest, CtsQuietEnvironmentVariableIsHonoured) {
  ::setenv("CTS_QUIET", "1", 1);
  EXPECT_TRUE(obs::quiet());
  ::unsetenv("CTS_QUIET");
  EXPECT_FALSE(obs::quiet());
}

TEST_F(ProgressTest, ConcurrentTickersNeverLoseFrames) {
  obs::ProgressReporter::Options options = silent_options(sink_);
  options.min_interval_sec = 0.0;
  obs::ProgressReporter reporter(options);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&reporter]() {
      for (int i = 0; i < 10000; ++i) reporter.add_frames(1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(reporter.frames(), 40000u);
}

}  // namespace
