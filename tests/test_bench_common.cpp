// ObsGuard harness behaviour: --help must exit 0 after printing the known
// flag list, unwritable report paths must degrade to a warning (never abort
// a finished bench), and the BenchSpec constructor must echo kind/title
// into the run report.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchSuite, LooksUpRegisteredSpecs) {
  const bench::BenchSpec& s = bench::spec("table1");
  EXPECT_STREQ(s.binary, "bench_table1");
  EXPECT_STREQ(s.kind, "analytic");
  EXPECT_TRUE(s.smoke);
  EXPECT_THROW(bench::spec("no_such_bench"), cts::util::InvalidArgument);
}

TEST(ObsGuardDeathTest, HelpPrintsFlagListAndExitsZero) {
  const char* argv[] = {"prog", "--help"};
  const cts::util::Flags flags(2, argv);
  EXPECT_EXIT(
      {
        bench::ObsGuard guard(flags, bench::spec("table1"), {"frames"});
        (void)guard;
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(ObsGuard, UnwritableReportPathsDoNotAbort) {
  const std::string bad = "/nonexistent_dir_cts_test/report.json";
  const std::string metrics_arg = "--metrics=" + bad;
  const std::string perf_arg = "--perf=" + bad;
  const char* argv[] = {"prog", metrics_arg.c_str(), perf_arg.c_str(),
                        "--quiet"};
  const cts::util::Flags flags(4, argv);
  {
    bench::ObsGuard guard(flags, "unwritable_test");
    (void)guard;
  }  // destructor writes the reports; failure must be a warning, not a throw
  SUCCEED();
}

TEST(ObsGuard, BenchSpecCtorEchoesKindAndTitleIntoRunReport) {
  const std::string path = ::testing::TempDir() + "/cts_obsguard_metrics.json";
  const std::string metrics_arg = "--metrics=" + path;
  const char* argv[] = {"prog", metrics_arg.c_str(), "--quiet"};
  const cts::util::Flags flags(3, argv);
  {
    bench::ObsGuard guard(flags, bench::spec("fig9_sim_markov"));
    (void)guard;
  }
  const cts::obs::JsonValue doc = cts::obs::json_parse(slurp(path));
  EXPECT_EQ(doc.at("config").at("run_id").as_string(), "fig9_sim_markov");
  EXPECT_EQ(doc.at("config").at("bench_kind").as_string(), "sim");
  EXPECT_FALSE(doc.at("config").at("bench_title").as_string().empty());
}

}  // namespace
