// Unit tests for the cts.cac.v1 / cts.cacresult.v1 wire schema: writer and
// strict parser round-trips, named validation errors on malformed
// documents, and model resolution (zoo ids plus inline specs with
// canonical cache-key names).

#include "cts/net/cac.hpp"

#include <string>

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/util/error.hpp"

namespace cn = cts::net;
namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

/// Runs `fn`, expecting InvalidArgument, and returns its message.
template <typename Fn>
std::string invalid_argument_message(Fn fn) {
  try {
    fn();
  } catch (const cu::InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected InvalidArgument";
  return "";
}

cn::CacRequest sample_request() {
  cn::CacRequest request;
  request.model.zoo_id = "za:0.9";
  request.deadline_s = 5.0;
  cn::CacQuery admit;
  admit.kind = cn::CacQueryKind::kAdmitBr;
  admit.capacity = 16140.0;
  admit.buffer = 4035.0;
  admit.log10_clr = -6.0;
  request.queries.push_back(admit);
  admit.kind = cn::CacQueryKind::kAdmitEb;
  request.queries.push_back(admit);
  cn::CacQuery bop = admit;
  bop.kind = cn::CacQueryKind::kBop;
  bop.n = 25;
  bop.interpolate = true;
  request.queries.push_back(bop);
  return request;
}

}  // namespace

TEST(CacRequest, RoundTripsThroughJson) {
  const cn::CacRequest request = sample_request();
  const cn::CacRequest parsed =
      cn::parse_cac_request(cn::write_cac_request_json(request));
  EXPECT_EQ(parsed.model.zoo_id, "za:0.9");
  EXPECT_EQ(parsed.deadline_s, 5.0);
  ASSERT_EQ(parsed.queries.size(), 3u);
  EXPECT_EQ(parsed.queries[0].kind, cn::CacQueryKind::kAdmitBr);
  EXPECT_EQ(parsed.queries[1].kind, cn::CacQueryKind::kAdmitEb);
  EXPECT_EQ(parsed.queries[2].kind, cn::CacQueryKind::kBop);
  EXPECT_EQ(parsed.queries[0].capacity, 16140.0);
  EXPECT_EQ(parsed.queries[0].buffer, 4035.0);
  EXPECT_EQ(parsed.queries[0].log10_clr, -6.0);
  EXPECT_EQ(parsed.queries[2].n, 25u);
  EXPECT_TRUE(parsed.queries[2].interpolate);
  EXPECT_FALSE(parsed.queries[0].interpolate);
}

TEST(CacRequest, RoundTripsInlineModels) {
  cn::CacRequest request = sample_request();
  request.model.zoo_id.clear();
  request.model.kind = "lrd";
  request.model.mean = 500.0;
  request.model.variance = 5000.0;
  request.model.hurst = 0.9;
  request.model.weight = 0.8;
  const cn::CacRequest parsed =
      cn::parse_cac_request(cn::write_cac_request_json(request));
  EXPECT_TRUE(parsed.model.zoo_id.empty());
  EXPECT_EQ(parsed.model.kind, "lrd");
  EXPECT_EQ(parsed.model.mean, 500.0);
  EXPECT_EQ(parsed.model.variance, 5000.0);
  EXPECT_EQ(parsed.model.hurst, 0.9);
  EXPECT_EQ(parsed.model.weight, 0.8);
}

TEST(CacRequest, RejectsMalformedDocumentsWithNamedErrors) {
  const std::string queries =
      R"("queries":[{"kind":"admit_br","capacity":16140,)"
      R"("buffer":4035,"log10_clr":-6}])";

  // Wrong schema tag.
  EXPECT_NE(invalid_argument_message([&] {
              cn::parse_cac_request(
                  R"({"schema":"cts.job.v1","model":{"id":"za:0.9"},)" +
                  queries + "}");
            }).find("cts.cac.v1"),
            std::string::npos);

  // A model must be an id or an inline kind, never both.
  EXPECT_NE(
      invalid_argument_message([&] {
        cn::parse_cac_request(
            R"({"schema":"cts.cac.v1","model":{"id":"za:0.9",)"
            R"("kind":"white"},)" +
            queries + "}");
      }).find("not both"),
      std::string::npos);

  // Unknown inline model kind is named.
  EXPECT_NE(invalid_argument_message([&] {
              cn::parse_cac_request(
                  R"({"schema":"cts.cac.v1","model":{"kind":"weibull",)"
                  R"("mean":500,"variance":5000},)" +
                  queries + "}");
            }).find("weibull"),
            std::string::npos);

  // Non-positive marginal moments.
  EXPECT_NE(invalid_argument_message([&] {
              cn::parse_cac_request(
                  R"({"schema":"cts.cac.v1","model":{"kind":"white",)"
                  R"("mean":-1,"variance":5000},)" +
                  queries + "}");
            }).find("mean"),
            std::string::npos);

  // Negative deadline.
  EXPECT_THROW(
      cn::parse_cac_request(
          R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
          R"("deadline_s":-1,)" +
          queries + "}"),
      cu::InvalidArgument);

  // Empty batch.
  EXPECT_NE(invalid_argument_message([] {
              cn::parse_cac_request(
                  R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                  R"("queries":[]})");
            }).find("empty query batch"),
            std::string::npos);

  // Unknown query kind is named with the known list.
  EXPECT_NE(invalid_argument_message([] {
              cn::parse_cac_request(
                  R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                  R"("queries":[{"kind":"admit","capacity":16140,)"
                  R"("buffer":4035,"log10_clr":-6}]})");
            }).find("admit_br"),
            std::string::npos);

  // Link parameters out of range.
  EXPECT_THROW(cn::parse_cac_request(
                   R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                   R"("queries":[{"kind":"admit_br","capacity":0,)"
                   R"("buffer":4035,"log10_clr":-6}]})"),
               cu::InvalidArgument);
  EXPECT_THROW(cn::parse_cac_request(
                   R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                   R"("queries":[{"kind":"admit_br","capacity":16140,)"
                   R"("buffer":-1,"log10_clr":-6}]})"),
               cu::InvalidArgument);
  EXPECT_THROW(cn::parse_cac_request(
                   R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                   R"("queries":[{"kind":"admit_br","capacity":16140,)"
                   R"("buffer":4035,"log10_clr":0}]})"),
               cu::InvalidArgument);

  // A bop probe needs an integer n >= 1; admit queries must not carry n.
  EXPECT_THROW(cn::parse_cac_request(
                   R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                   R"("queries":[{"kind":"bop","capacity":16140,)"
                   R"("buffer":4035,"log10_clr":-6,"n":2.5}]})"),
               cu::InvalidArgument);
  EXPECT_NE(invalid_argument_message([] {
              cn::parse_cac_request(
                  R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},)"
                  R"("queries":[{"kind":"admit_br","capacity":16140,)"
                  R"("buffer":4035,"log10_clr":-6,"n":3}]})");
            }).find("bop"),
            std::string::npos);
}

TEST(CacModel, ZooIdsResolveToTheZooModel) {
  cn::CacModel model;
  model.zoo_id = "za:0.9";
  const cf::ModelSpec spec = cn::resolve_cac_model(model);
  const cf::ModelSpec zoo = cf::make_za(0.9);
  EXPECT_EQ(spec.name, zoo.name);
  EXPECT_EQ(spec.mean, zoo.mean);
  EXPECT_EQ(spec.variance, zoo.variance);
  ASSERT_NE(spec.acf, nullptr);
}

TEST(CacModel, InlineSpecsGetCanonicalCacheKeyNames) {
  cn::CacModel model;
  model.kind = "geometric";
  model.mean = 500.0;
  model.variance = 5000.0;
  model.a = 0.8;
  const cf::ModelSpec spec = cn::resolve_cac_model(model);
  // The canonical name doubles as the admission-cache key, so it must
  // encode every parameter -- and equal specs must share it.
  EXPECT_EQ(spec.name, "geometric(a=0.8,mu=500,var=5000)");
  EXPECT_EQ(cn::resolve_cac_model(model).name, spec.name);
  EXPECT_EQ(spec.make_source, nullptr);  // analytic-only, never simulated

  model.kind = "white";
  EXPECT_EQ(cn::resolve_cac_model(model).name, "white(mu=500,var=5000)");
  model.kind = "lrd";
  model.hurst = 0.9;
  model.weight = 0.8;
  EXPECT_EQ(cn::resolve_cac_model(model).name,
            "lrd(H=0.9,w=0.8,mu=500,var=5000)");

  model.kind = "weibull";
  EXPECT_THROW(cn::resolve_cac_model(model), cu::InvalidArgument);
}

TEST(ModelFromId, ParsesTheZooGrammarStrictly) {
  EXPECT_EQ(cf::model_from_id("za:0.9").name, cf::make_za(0.9).name);
  EXPECT_EQ(cf::model_from_id("dar:0.9:2").name,
            cf::make_dar_matched_to_za(0.9, 2).name);
  EXPECT_EQ(cf::model_from_id("l").name, cf::make_l().name);
  EXPECT_EQ(cf::model_from_id("white").name, cf::make_white().name);
  EXPECT_EQ(cf::model_from_id("ar1:0.8").name, cf::make_ar1(0.8).name);

  // Unknown family, malformed number, wrong arity, bad DAR order -- every
  // failure names the offending id.
  EXPECT_NE(invalid_argument_message([] { cf::model_from_id("zb:0.9"); })
                .find("zb"),
            std::string::npos);
  EXPECT_NE(invalid_argument_message([] { cf::model_from_id("za:0.9x"); })
                .find("0.9x"),
            std::string::npos);
  EXPECT_THROW(cf::model_from_id("za"), cu::InvalidArgument);
  EXPECT_THROW(cf::model_from_id("za:0.9:1"), cu::InvalidArgument);
  EXPECT_THROW(cf::model_from_id("dar:0.9:0"), cu::InvalidArgument);
  EXPECT_THROW(cf::model_from_id(""), cu::InvalidArgument);
}

TEST(CacResponse, RoundTripsOkErrorAndPerQueryFailures) {
  cn::CacResponse response;
  response.ok = true;
  response.model_name = "Z^0.9";
  response.elapsed_s = 0.012;
  cn::CacAnswer good;
  good.ok = true;
  good.admissible = 30;
  good.log10_bop = -6.4;
  response.answers.push_back(good);
  cn::CacAnswer failed;
  failed.ok = false;
  failed.error = "asymptotic_variance_rate: diverged";
  response.answers.push_back(failed);
  cn::CacAnswer probe;
  probe.ok = true;
  probe.admissible = 0;
  probe.log10_bop = -5.924384610234567;  // %.17g survives the round trip
  probe.interpolated = true;
  response.answers.push_back(probe);

  const cn::CacResponse parsed =
      cn::parse_cac_response(cn::write_cac_response_json(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.model_name, "Z^0.9");
  ASSERT_EQ(parsed.answers.size(), 3u);
  EXPECT_TRUE(parsed.answers[0].ok);
  EXPECT_EQ(parsed.answers[0].admissible, 30u);
  EXPECT_EQ(parsed.answers[0].log10_bop, -6.4);
  EXPECT_FALSE(parsed.answers[1].ok);
  EXPECT_EQ(parsed.answers[1].error, "asymptotic_variance_rate: diverged");
  EXPECT_EQ(parsed.answers[2].log10_bop, -5.924384610234567);
  EXPECT_TRUE(parsed.answers[2].interpolated);
  EXPECT_FALSE(parsed.answers[0].interpolated);

  cn::CacResponse error;
  error.ok = false;
  error.error = "cac: empty query batch";
  const cn::CacResponse parsed_error =
      cn::parse_cac_response(cn::write_cac_response_json(error));
  EXPECT_FALSE(parsed_error.ok);
  EXPECT_EQ(parsed_error.error, "cac: empty query batch");
}

TEST(CacResponse, RejectsStructurallyInvalidReplies) {
  // A failed reply must explain itself.
  EXPECT_THROW(cn::parse_cac_response(
                   R"({"schema":"cts.cacresult.v1","ok":false,"error":""})"),
               cu::InvalidArgument);
  // So must a failed answer.
  EXPECT_THROW(
      cn::parse_cac_response(
          R"({"schema":"cts.cacresult.v1","ok":true,"model":"m",)"
          R"("elapsed_s":0,"answers":[{"ok":false,"error":""}]})"),
      cu::InvalidArgument);
  // Admitted counts are non-negative integers.
  EXPECT_THROW(
      cn::parse_cac_response(
          R"({"schema":"cts.cacresult.v1","ok":true,"model":"m",)"
          R"("elapsed_s":0,"answers":[{"ok":true,"admissible":1.5,)"
          R"("log10_bop":-6}]})"),
      cu::InvalidArgument);
  // And the schema tag is checked first.
  EXPECT_THROW(cn::parse_cac_response(R"({"schema":"cts.stats.v1"})"),
               cu::InvalidArgument);
}
