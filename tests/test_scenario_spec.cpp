// Scenario spec parser (cts/sim/scenario.hpp): the strict cts.scenario.v1
// grammar.  Accept cases pin defaults and topology resolution; the
// rejection suite asserts that every violation class throws
// util::InvalidArgument naming the line number and the offending key or
// name -- the error contract docs/scenarios.md promises.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cts/sim/scenario.hpp"
#include "cts/util/error.hpp"

namespace sim = cts::sim;
namespace cu = cts::util;

namespace {

/// Asserts parse_scenario(text) throws InvalidArgument whose message
/// contains every needle (typically "line N" plus the key).
void expect_rejected(const std::string& text,
                     const std::vector<std::string>& needles) {
  try {
    sim::parse_scenario(text);
    FAIL() << "spec was accepted:\n" << text;
  } catch (const cu::InvalidArgument& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "error message missing '" << needle << "': " << what;
    }
  }
}

const char* kMinimal =
    "cts.scenario.v1\n"
    "[source s]\n"
    "model = white\n"
    "[hop m]\n"
    "input = s\n"
    "capacity = 600\n"
    "buffer = 100\n";

TEST(ScenarioSpec, MinimalSpecParsesWithDefaults) {
  const sim::Scenario sc = sim::parse_scenario(kMinimal);
  EXPECT_EQ(sc.name, "scenario");
  EXPECT_EQ(sc.frames, 20000u);
  EXPECT_EQ(sc.warmup, 1000u);
  EXPECT_EQ(sc.replications, 4u);
  EXPECT_EQ(sc.seed, 0x5EEDC0DEULL);
  EXPECT_DOUBLE_EQ(sc.Ts, 0.04);
  EXPECT_EQ(sc.occupancy_buckets, 16u);
  EXPECT_EQ(sc.hop_trace_every, 0u);
  ASSERT_EQ(sc.sources.size(), 1u);
  EXPECT_EQ(sc.sources[0].count, 1u);
  EXPECT_FALSE(sc.sources[0].low_priority);
  ASSERT_EQ(sc.hops.size(), 1u);
  EXPECT_FALSE(sc.hops[0].priority());
  ASSERT_EQ(sc.hop_order.size(), 1u);
  EXPECT_EQ(sc.text, kMinimal);
}

TEST(ScenarioSpec, TandemTopologyResolvesUpstreamFirst) {
  const sim::Scenario sc = sim::parse_scenario(
      "cts.scenario.v1\n"
      "[source a]\n"
      "model = white\n"
      "[source b]\n"
      "model = white\n"
      "[hop core]\n"        // declared downstream-first on purpose
      "input = edge, b\n"
      "capacity = 1200\n"
      "buffer = 200\n"
      "[hop edge]\n"
      "input = a\n"
      "capacity = 600\n"
      "buffer = 100\n");
  ASSERT_EQ(sc.hops.size(), 2u);
  ASSERT_EQ(sc.hop_order.size(), 2u);
  // hops[0] = core, hops[1] = edge; edge must be processed first.
  EXPECT_EQ(sc.hops[sc.hop_order[0]].name, "edge");
  EXPECT_EQ(sc.hops[sc.hop_order[1]].name, "core");
  EXPECT_EQ(sc.hops[0].hop_inputs, std::vector<std::size_t>{1});
  EXPECT_EQ(sc.hops[0].source_inputs, std::vector<std::size_t>{1});
}

// Regression: an inline-model source consumed alongside an upstream hop
// in a later hop's input list used to die with std::bad_alloc -- the
// "source already consumed" error string was built eagerly, indexing
// hops[size_t(-1)] on the SUCCESS path.  The spec is valid and must
// parse.
TEST(ScenarioSpec, InlineSourceFeedingSecondTandemHopParses) {
  const sim::Scenario sc = sim::parse_scenario(
      "cts.scenario.v1\n"
      "[scenario]\n"
      "name = smoke_tandem\n"
      "frames = 2000\n"
      "warmup = 200\n"
      "replications = 4\n"
      "[source video]\n"
      "model = white\n"
      "count = 20\n"
      "[source bg]\n"
      "kind = geometric\n"
      "mean = 400\n"
      "variance = 4000\n"
      "a = 0.7\n"
      "count = 5\n"
      "[hop edge]\n"
      "input = video\n"
      "capacity = 11000\n"
      "buffer = 1200\n"
      "[hop core]\n"
      "input = edge, bg\n"
      "capacity = 13000\n"
      "buffer = 2000\n");
  ASSERT_EQ(sc.hop_order.size(), 2u);
  EXPECT_EQ(sc.hops[sc.hop_order[0]].name, "edge");
  EXPECT_EQ(sc.sources[1].model.kind, "geometric");
}

TEST(ScenarioSpec, LinkMbpsResolvesCapacityViaTs) {
  const sim::Scenario sc = sim::parse_scenario(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "link_mbps = 155.52\n"
      "buffer = 100\n");
  // 155.52 Mb/s over a 40 ms frame, 424 bits/cell.
  EXPECT_NEAR(sc.hops[0].capacity_cells, 155.52e6 * 0.04 / 424.0, 1e-6);
}

TEST(ScenarioSpec, MissingSchemaLineRejected) {
  expect_rejected("[source s]\nmodel = white\n",
                  {"line 1", "cts.scenario.v1"});
}

TEST(ScenarioSpec, UnknownKeyNamesLineKeyAndSuggestion) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "bufer = 100\n",
      {"line 7", "[hop m]", "'bufer'", "did you mean 'buffer'"});
}

TEST(ScenarioSpec, BadTypeNamesLineAndKey) {
  expect_rejected("cts.scenario.v1\n"
                  "[scenario]\n"
                  "frames = soon\n",
                  {"line 3", "'frames'", "'soon'"});
  expect_rejected("cts.scenario.v1\n"
                  "[scenario]\n"
                  "seed = -1\n",
                  {"line 3", "'seed'", "'-1'"});
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\n"
                  "kind = geometric\n"
                  "mean = abc\n",
                  {"line 4", "'mean'", "'abc'"});
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\n"
                  "model = white\n"
                  "aal5 = maybe\n",
                  {"line 4", "'aal5'", "'maybe'"});
}

TEST(ScenarioSpec, DuplicateKeyNamesBothLines) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "count = 2\n"
      "count = 3\n",
      {"line 5", "duplicate key 'count'", "line 4"});
}

TEST(ScenarioSpec, DuplicateHopNameRejected) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 8", "duplicate name 'm'"});
}

TEST(ScenarioSpec, SourceHopNamespaceIsShared) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source m]\n"
      "model = white\n"
      "[hop m]\n"
      "input = m\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 4", "duplicate name 'm'"});
}

TEST(ScenarioSpec, UnknownInputNameRejected) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s, ghost\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 4", "[hop m]", "'input'", "'ghost'"});
}

TEST(ScenarioSpec, UnconsumedSourceNamesItsSection) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[source orphan]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 4", "[source orphan]", "not consumed"});
}

TEST(ScenarioSpec, DoublyConsumedSourceNamesFirstConsumer) {
  // Also a regression companion to InlineSourceFeedingSecondTandemHopParses:
  // this is the path whose message indexes the prior consumer.
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[source t]\n"
      "model = white\n"
      "[hop first]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "[hop second]\n"
      "input = s, t\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 10", "[hop second]", "source 's'", "already feeds hop 'first'"});
}

TEST(ScenarioSpec, DoublyConsumedHopNamesFirstConsumer) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[source t]\n"
      "model = white\n"
      "[source u]\n"
      "model = white\n"
      "[hop up]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "[hop down1]\n"
      "input = up, t\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "[hop down2]\n"
      "input = up, u\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 16", "[hop down2]", "hop 'up'", "already feeds hop 'down1'"});
}

TEST(ScenarioSpec, SelfLoopRejected) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s, m\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 4", "[hop m]", "feeds itself"});
}

TEST(ScenarioSpec, TopologyCycleRejected) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop a]\n"
      "input = s, b\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "[hop b]\n"
      "input = a\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"cycle", "'input'"});
}

TEST(ScenarioSpec, ModelAndInlineKindAreExclusive) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "kind = geometric\n"
      "mean = 500\n"
      "variance = 5000\n"
      "a = 0.8\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n",
      {"line 2", "[source s]", "'model'"});
}

TEST(ScenarioSpec, InlineKindConstraintChecks) {
  // geometric requires a; lrd rejects a; lrd requires hurst+weight.
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\n"
                  "kind = geometric\n"
                  "mean = 500\n"
                  "variance = 5000\n"
                  "[hop m]\ninput = s\ncapacity = 600\nbuffer = 100\n",
                  {"[source s]", "'a'"});
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\n"
                  "kind = lrd\n"
                  "mean = 500\n"
                  "variance = 5000\n"
                  "a = 0.5\n"
                  "hurst = 0.9\n"
                  "weight = 0.5\n"
                  "[hop m]\ninput = s\ncapacity = 600\nbuffer = 100\n",
                  {"[source s]", "'a'", "geometric"});
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\n"
                  "kind = lrd\n"
                  "mean = 500\n"
                  "variance = 5000\n"
                  "[hop m]\ninput = s\ncapacity = 600\nbuffer = 100\n",
                  {"[source s]", "'hurst'", "'weight'"});
}

TEST(ScenarioSpec, CapacityAndLinkMbpsAreExclusive) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "link_mbps = 155\n"
      "buffer = 100\n",
      {"line 4", "[hop m]", "'capacity'", "'link_mbps'"});
}

TEST(ScenarioSpec, ThresholdMustFitBuffer) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "[hop m]\n"
      "input = s\n"
      "capacity = 600\n"
      "buffer = 100\n"
      "threshold = 200\n",
      {"line 4", "[hop m]", "'threshold'"});
}

TEST(ScenarioSpec, PolicingKeysRequireScr) {
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "police_bt = 0.1\n"
      "[hop m]\ninput = s\ncapacity = 600\nbuffer = 100\n",
      {"[source s]", "'police_scr'"});
  expect_rejected(
      "cts.scenario.v1\n"
      "[source s]\n"
      "model = white\n"
      "police_scr = 10000\n"
      "police_pcr = 5000\n"
      "[hop m]\ninput = s\ncapacity = 600\nbuffer = 100\n",
      {"[source s]", "'police_pcr'"});
}

TEST(ScenarioSpec, UnknownSectionSuggestsNearMiss) {
  expect_rejected("cts.scenario.v1\n[sorce s]\nmodel = white\n",
                  {"line 2", "[sorce]", "did you mean [source]"});
}

TEST(ScenarioSpec, KeyBeforeAnySectionRejected) {
  expect_rejected("cts.scenario.v1\nframes = 100\n",
                  {"line 2", "'frames'", "before any section"});
}

TEST(ScenarioSpec, MissingSourcesOrHopsRejected) {
  expect_rejected("cts.scenario.v1\n[scenario]\nname = x\n",
                  {"no [source NAME]"});
  expect_rejected("cts.scenario.v1\n[source s]\nmodel = white\n",
                  {"no [hop NAME]"});
}

TEST(ScenarioSpec, HopRequiresInputAndBuffer) {
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\nmodel = white\n"
                  "[hop m]\ncapacity = 600\nbuffer = 100\n",
                  {"line 4", "[hop m]", "'input'"});
  expect_rejected("cts.scenario.v1\n"
                  "[source s]\nmodel = white\n"
                  "[hop m]\ninput = s\ncapacity = 600\n",
                  {"line 4", "[hop m]", "'buffer'"});
}

}  // namespace
