// cts.statsreq.v1 / cts.stats.v1 wire schema: requests and replies must
// round-trip losslessly (including the metrics snapshot and span table),
// and the strict parser must reject malformed documents rather than
// guessing.

#include <gtest/gtest.h>

#include <string>

#include "cts/net/stats.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/util/error.hpp"

namespace net = cts::net;
namespace obs = cts::obs;

namespace {

TEST(StatsRequest, RoundTrips) {
  const std::string text = net::write_stats_request_json();
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error;
  EXPECT_NO_THROW(net::parse_stats_request(text));
  EXPECT_THROW(net::parse_stats_request(R"({"schema":"cts.job.v1"})"),
               cts::util::InvalidArgument);
  EXPECT_THROW(net::parse_stats_request("{}"), cts::util::InvalidArgument);
}

TEST(Stats, RoundTripsLosslessly) {
  net::WorkerStats stats;
  stats.worker = "cts_shardd:9001";
  stats.pid = 4242;
  stats.uptime_s = 12.5;
  stats.jobs_in_flight = 1;
  stats.jobs_ok = 5;
  stats.jobs_failed = 2;
  stats.jobs_retried = 1;
  stats.stats_served = 3;
  stats.metrics.add("shardd.jobs_ok", 5);
  stats.metrics.add_sum("shardd.cells", 1.25e9);
  stats.metrics.observe("shardd.job_wall_ms", 812.5);
  stats.metrics.observe("shardd.job_wall_ms", 911.25);
  stats.spans.push_back({"shardd.exec", 5, 4'000'000, 3'900'000, 700'000,
                         900'000});

  const std::string text = net::write_stats_json(stats);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error << text;
  EXPECT_EQ(obs::json_parse(text).at("schema").as_string(),
            net::kStatsSchema);

  const net::WorkerStats back = net::parse_stats(text);
  EXPECT_EQ(back.worker, "cts_shardd:9001");
  EXPECT_EQ(back.pid, 4242);
  EXPECT_DOUBLE_EQ(back.uptime_s, 12.5);
  EXPECT_EQ(back.jobs_in_flight, 1u);
  EXPECT_EQ(back.jobs_ok, 5u);
  EXPECT_EQ(back.jobs_failed, 2u);
  EXPECT_EQ(back.jobs_retried, 1u);
  EXPECT_EQ(back.stats_served, 3u);

  // The metrics snapshot is lossless: merging the parsed shard into a
  // fresh registry reproduces counters, Kahan sums, and histogram moments.
  EXPECT_EQ(back.metrics.counters().at("shardd.jobs_ok"), 5u);
  EXPECT_DOUBLE_EQ(back.metrics.sums().at("shardd.cells").value(), 1.25e9);
  const obs::HistogramCell& hist =
      back.metrics.histograms().at("shardd.job_wall_ms");
  EXPECT_EQ(hist.stats().count(), 2u);
  EXPECT_DOUBLE_EQ(hist.stats().mean(), (812.5 + 911.25) / 2);

  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].name, "shardd.exec");
  EXPECT_EQ(back.spans[0].count, 5u);
  EXPECT_DOUBLE_EQ(back.spans[0].self_us, 3'900'000.0);
}

TEST(Stats, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(net::parse_stats("not json"), cts::util::Error);
  EXPECT_THROW(net::parse_stats(R"({"schema":"cts.stats.v2"})"),
               cts::util::InvalidArgument);
  // A syntactically fine document missing the jobs section must throw,
  // not default-construct counters.
  EXPECT_THROW(
      net::parse_stats(
          R"({"schema":"cts.stats.v1","worker":"w","pid":1,"uptime_s":1.0})"),
      cts::util::InvalidArgument);
}

}  // namespace
