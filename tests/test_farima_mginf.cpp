// Unit tests for the F-ARIMA ACF and the M/G/infinity source.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/acf_model.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/proc/mginf.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(FarimaAcf, FirstLagClosedForm) {
  // r(1) = d / (1 - d).
  for (const double d : {0.1, 0.25, 0.4}) {
    const cc::FarimaAcf acf(d);
    EXPECT_NEAR(acf.at(1), d / (1.0 - d), 1e-14) << "d=" << d;
    EXPECT_DOUBLE_EQ(acf.at(0), 1.0);
  }
}

TEST(FarimaAcf, TailIsPowerLaw) {
  const double d = 0.3;  // H = 0.8
  const cc::FarimaAcf acf(d);
  // r(k) ~ C k^{2d-1}: ratio test.
  const double r200 = acf.at(200);
  const double r800 = acf.at(800);
  EXPECT_NEAR(r800 / r200, std::pow(4.0, 2.0 * d - 1.0), 1e-3);
}

TEST(FarimaAcf, RejectsOutOfRangeD) {
  EXPECT_THROW(cc::FarimaAcf(0.0), cu::InvalidArgument);
  EXPECT_THROW(cc::FarimaAcf(0.5), cu::InvalidArgument);
}

TEST(FarimaModel, GeneratorMatchesAnalyticAcf) {
  const cf::ModelSpec model = cf::make_farima(0.3);
  auto source = model.make_source(99);
  std::vector<double> trace(1 << 15);
  for (auto& x : trace) x = source->next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 6);
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(r[k], model.acf->at(k), 0.06) << "lag " << k;
  }
  cu::MomentAccumulator acc;
  for (const double x : trace) acc.add(x);
  EXPECT_NEAR(acc.mean(), 500.0, 20.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 700.0);
}

TEST(MgInfParams, ValidationAndDerivedStats) {
  cp::MgInfParams params = cp::MgInfParams::for_moments(500.0, 5000.0, 1.4);
  EXPECT_NO_THROW(params.validate());
  EXPECT_NEAR(params.hurst(), 0.8, 1e-12);
  EXPECT_NEAR(params.frame_mean(), 500.0, 0.5);
  EXPECT_NEAR(params.frame_variance(), 5000.0, 5.0);
  EXPECT_DOUBLE_EQ(params.cells_per_session, 10.0);

  params.beta = 2.5;
  EXPECT_THROW(params.validate(), cu::InvalidArgument);
  EXPECT_THROW(cp::MgInfParams::for_moments(500.0, 400.0, 1.4),
               cu::InvalidArgument);
}

TEST(MgInfParams, SurvivalFunction) {
  cp::MgInfParams params;
  params.min_duration = 2.0;
  params.beta = 1.5;
  EXPECT_DOUBLE_EQ(params.duration_survival(0), 1.0);
  EXPECT_DOUBLE_EQ(params.duration_survival(1), 1.0);
  EXPECT_NEAR(params.duration_survival(8), std::pow(0.25, 1.5), 1e-12);
}

TEST(MgInfAcf, MatchesSurvivalRatio) {
  const cp::MgInfParams params =
      cp::MgInfParams::for_moments(500.0, 5000.0, 1.5);
  const cp::MgInfAcf acf(params);
  EXPECT_DOUBLE_EQ(acf.at(0), 1.0);
  // r(k) decreasing, positive, power-law tail k^{1-beta}.
  double prev = 1.0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                              std::size_t{50}, std::size_t{500}}) {
    const double r = acf.at(k);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, prev);
    prev = r;
  }
  const double ratio = acf.at(2000) / acf.at(500);
  EXPECT_NEAR(ratio, std::pow(4.0, 1.0 - params.beta), 0.01);
}

TEST(MgInfSource, StationaryMomentsAndAcf) {
  const cp::MgInfParams params =
      cp::MgInfParams::for_moments(500.0, 5000.0, 1.5);
  // Ensemble across sources (LRD: single paths converge slowly).
  cu::MomentAccumulator acc;
  for (int s = 0; s < 16; ++s) {
    cp::MgInfSource source(params, 100 + static_cast<std::uint64_t>(s));
    for (int i = 0; i < 20000; ++i) acc.add(source.next_frame());
  }
  EXPECT_NEAR(acc.mean(), 500.0, 20.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 1000.0);

  cp::MgInfSource source(params, 7);
  std::vector<double> trace(100000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 5);
  const cp::MgInfAcf acf(params);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], acf.at(k), 0.08) << "lag " << k;
  }
}

TEST(MgInfSource, ActiveSessionsNeverNegative) {
  const cp::MgInfParams params =
      cp::MgInfParams::for_moments(100.0, 1000.0, 1.3);
  cp::MgInfSource source(params, 3);
  for (int i = 0; i < 50000; ++i) {
    const double x = source.next_frame();
    ASSERT_GE(x, 0.0);
  }
}

TEST(MgInfSource, CloneDeterminism) {
  const cp::MgInfParams params =
      cp::MgInfParams::for_moments(500.0, 5000.0, 1.4);
  cp::MgInfSource source(params, 1);
  auto a = source.clone(55);
  auto b = source.clone(55);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}

TEST(MgInfModel, CtsMachineryAccepts) {
  // The M/G/inf ACF plugs straight into the CTS machinery and behaves like
  // every other model: finite, monotone CTS.
  const cf::ModelSpec model = cf::make_mginf(1.4);
  cc::RateFunction rate(model.acf, model.mean, model.variance, 526.0);
  EXPECT_EQ(rate.evaluate(0.0).critical_m, 1u);
  std::size_t prev = 0;
  for (const double b : {50.0, 200.0, 800.0}) {
    const auto m = rate.evaluate(b).critical_m;
    EXPECT_GE(m, prev);
    EXPECT_LT(m, 100000u);
    prev = m;
  }
}
