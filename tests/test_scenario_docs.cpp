// Docs-drift guard: docs/scenarios.md is the NORMATIVE reference for the
// cts.scenario.v1 spec format, and the parser's key tables
// (kScenarioSections in cts/sim/scenario.hpp) are the single source of
// truth both the parser and this test read.  A key added to the parser
// without a docs/scenarios.md entry fails here, so the spec reference
// cannot rot silently -- the same contract test_cli_docs.cpp enforces
// for docs/cli.md.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "cts/sim/scenario.hpp"

namespace sim = cts::sim;

namespace {

std::string scenarios_doc() {
  std::ifstream in(std::string(CTS_DOCS_DIR) + "/scenarios.md");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ScenarioDocs, DocExistsAndNamesSchemaAndEverySection) {
  const std::string doc = scenarios_doc();
  ASSERT_FALSE(doc.empty()) << "docs/scenarios.md missing or unreadable";
  EXPECT_NE(doc.find(sim::kScenarioSchema), std::string::npos)
      << "docs/scenarios.md never names the schema tag "
      << sim::kScenarioSchema;
  for (const sim::ScenarioSectionDoc& section : sim::kScenarioSections) {
    const std::string heading = std::string("### [") + section.section;
    EXPECT_NE(doc.find(heading), std::string::npos)
        << "docs/scenarios.md has no '" << heading
        << "...]' section heading";
  }
}

TEST(ScenarioDocs, EveryParserKeyIsDocumentedInItsSection) {
  const std::string doc = scenarios_doc();
  ASSERT_FALSE(doc.empty());
  for (const sim::ScenarioSectionDoc& section : sim::kScenarioSections) {
    // Keys must appear inside their own section, not just anywhere:
    // names like `mean` could otherwise hide in another table.
    const std::string heading = std::string("### [") + section.section;
    const std::size_t start = doc.find(heading);
    ASSERT_NE(start, std::string::npos) << section.section;
    std::size_t end = doc.find("\n### ", start);
    if (end == std::string::npos) end = doc.size();
    const std::string body = doc.substr(start, end - start);
    for (std::size_t i = 0; i < section.count; ++i) {
      const std::string needle =
          std::string("`") + section.keys[i].key + "`";
      EXPECT_NE(body.find(needle), std::string::npos)
          << "docs/scenarios.md section '" << section.section
          << "' is missing key " << needle
          << " -- update the doc to match cts/sim/scenario.hpp";
    }
  }
}

TEST(ScenarioDocs, ResultAndTraceSchemasAreDocumented) {
  const std::string doc = scenarios_doc();
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("cts.scenarioresult.v1"), std::string::npos);
  EXPECT_NE(doc.find("cts.scenariotrace.v1"), std::string::npos);
}

}  // namespace
