// Unit tests for the runtime-dispatched SIMD kernels: every kernel must
// produce byte-identical results on every kind the host supports (the
// bit-identity contract documented in cts/core/simd.hpp).

#include "cts/core/simd.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cs = cts::core::simd;
namespace cu = cts::util;

namespace {

/// Restores auto dispatch when a test that pins a kind exits.
struct ForceGuard {
  ~ForceGuard() { cs::clear_force(); }
};

std::vector<cs::Kind> supported_kinds() {
  std::vector<cs::Kind> kinds{cs::Kind::kScalar};
  if (cs::best_supported() >= cs::Kind::kSse2) kinds.push_back(cs::Kind::kSse2);
  if (cs::best_supported() >= cs::Kind::kAvx2) kinds.push_back(cs::Kind::kAvx2);
  return kinds;
}

/// Sequential reference scan: running minimum under strict <, over the
/// reciprocal table 1/(2 V(m)) the production scan consumes.
cs::ScanPoint reference_scan(double b, double drift,
                             const std::vector<double>& inv2v, std::size_t lo,
                             std::size_t hi) {
  cs::ScanPoint best;
  best.m = 0;
  best.value = 0.0;
  for (std::size_t m = lo; m <= hi; ++m) {
    const double md = static_cast<double>(m);
    const double num = b + md * drift;
    const double value = num * num * inv2v[m];
    if (best.m == 0 || value < best.value) {
      best.value = value;
      best.m = m;
    }
  }
  return best;
}

std::vector<double> random_inv2v_table(std::size_t size, std::uint64_t seed) {
  cu::Xoshiro256pp rng(seed);
  std::vector<double> inv2v(size);
  inv2v[0] = 0.0;  // unused
  double v = 1.0;
  for (std::size_t m = 1; m < size; ++m) {
    v += 0.5 + rng.uniform01() * 2.0;  // V increasing, positive
    inv2v[m] = 1.0 / (2.0 * v);
  }
  return inv2v;
}

}  // namespace

TEST(SimdDispatch, NamesRoundTrip) {
  for (const cs::Kind kind : supported_kinds()) {
    EXPECT_EQ(cs::parse_kind(cs::kind_name(kind)), kind);
  }
}

TEST(SimdDispatch, ParseRejectsUnknownKind) {
  EXPECT_THROW(cs::parse_kind(""), cu::InvalidArgument);
  EXPECT_THROW(cs::parse_kind("avx512"), cu::InvalidArgument);
  EXPECT_THROW(cs::parse_kind("Scalar"), cu::InvalidArgument);
}

TEST(SimdDispatch, ForceSelectsAndClears) {
  ForceGuard guard;
  for (const cs::Kind kind : supported_kinds()) {
    cs::force(kind);
    EXPECT_EQ(cs::active(), kind);
  }
  cs::clear_force();
}

TEST(SimdScanMin, MatchesSequentialReferenceOnEveryKind) {
  ForceGuard guard;
  const std::vector<double> inv2v = random_inv2v_table(20000, 1234);
  const double b = 400.0;
  const double drift = 12.0;
  // Window sizes cross the vector-width fallbacks (SSE2 < 4, AVX2 < 8) and
  // both alignment parities of the start index.
  for (const std::size_t lo : {1u, 2u, 3u, 7u, 64u, 1001u}) {
    for (const std::size_t len :
         {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 100u, 4097u, 18000u}) {
      const std::size_t hi = std::min(lo + len - 1, inv2v.size() - 1);
      const cs::ScanPoint ref = reference_scan(b, drift, inv2v, lo, hi);
      for (const cs::Kind kind : supported_kinds()) {
        cs::force(kind);
        const cs::ScanPoint got =
            cs::scan_min(b, drift, inv2v.data(), lo, hi);
        EXPECT_EQ(got.m, ref.m) << cs::kind_name(kind) << " lo=" << lo
                                << " hi=" << hi;
        EXPECT_EQ(got.value, ref.value)
            << cs::kind_name(kind) << " lo=" << lo << " hi=" << hi;
      }
    }
  }
}

TEST(SimdScanMin, TiesResolveToLowestM) {
  ForceGuard guard;
  // drift = 0 and a constant reciprocal table make every objective value
  // equal, so the argmin must come back as the window start on every kind.
  std::vector<double> inv2v(4096, 0.25);
  inv2v[0] = 0.0;
  for (const cs::Kind kind : supported_kinds()) {
    cs::force(kind);
    for (const std::size_t lo : {1u, 5u, 9u}) {
      const cs::ScanPoint got =
          cs::scan_min(3.0, 0.0, inv2v.data(), lo, 4000);
      EXPECT_EQ(got.m, lo) << cs::kind_name(kind);
    }
  }
}

TEST(SimdScanMin, RandomTablesAgreeAcrossKinds) {
  ForceGuard guard;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<double> inv2v = random_inv2v_table(5000, seed);
    cu::Xoshiro256pp rng(seed ^ 0xABCDEF);
    const double b = rng.uniform01() * 1000.0;
    const double drift = 1.0 + rng.uniform01() * 40.0;
    cs::force(cs::Kind::kScalar);
    const cs::ScanPoint ref = cs::scan_min(b, drift, inv2v.data(), 1, 4999);
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      const cs::ScanPoint got = cs::scan_min(b, drift, inv2v.data(), 1, 4999);
      EXPECT_EQ(got.m, ref.m) << cs::kind_name(kind) << " seed=" << seed;
      EXPECT_EQ(got.value, ref.value)
          << cs::kind_name(kind) << " seed=" << seed;
    }
  }
}

TEST(SimdDotReversed, BitIdenticalAcrossKindsAndCloseToNaive) {
  ForceGuard guard;
  cu::Xoshiro256pp rng(99);
  for (const std::size_t n :
       {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u, 63u, 256u, 1023u}) {
    std::vector<double> a(n), rev(n);
    for (auto& x : a) x = rng.uniform01() * 2.0 - 1.0;
    for (auto& x : rev) x = rng.uniform01() * 2.0 - 1.0;
    const double* rev_last = rev.empty() ? nullptr : &rev[n - 1];
    cs::force(cs::Kind::kScalar);
    const double ref = cs::dot_reversed(a.data(), rev_last, n);
    double naive = 0.0;
    for (std::size_t j = 0; j < n; ++j) naive += a[j] * rev[n - 1 - j];
    EXPECT_NEAR(ref, naive, 1e-12 * (1.0 + std::fabs(naive))) << "n=" << n;
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      const double got = cs::dot_reversed(a.data(), rev_last, n);
      EXPECT_EQ(got, ref) << cs::kind_name(kind) << " n=" << n;
    }
  }
}

TEST(SimdAxpyReversed, BitIdenticalAcrossKinds) {
  ForceGuard guard;
  cu::Xoshiro256pp rng(7);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 13u, 64u, 255u}) {
    std::vector<double> a(n);
    for (auto& x : a) x = rng.uniform01() * 2.0 - 1.0;
    const double r = rng.uniform01();
    std::vector<double> ref(n, 0.0);
    cs::force(cs::Kind::kScalar);
    cs::axpy_reversed(a.data(), n > 0 ? &a[n - 1] : nullptr, r, ref.data(),
                      n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(ref[j], a[j] - r * a[n - 1 - j]);
    }
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      std::vector<double> out(n, 0.0);
      cs::axpy_reversed(a.data(), n > 0 ? &a[n - 1] : nullptr, r, out.data(),
                        n);
      EXPECT_EQ(std::memcmp(out.data(), ref.data(), n * sizeof(double)), 0)
          << cs::kind_name(kind) << " n=" << n;
    }
  }
}

TEST(SimdScalePairs, BitIdenticalAcrossKinds) {
  ForceGuard guard;
  cu::Xoshiro256pp rng(21);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 31u, 128u, 511u}) {
    std::vector<double> s(n), z(2 * n);
    for (auto& x : s) x = rng.uniform01() * 3.0;
    for (auto& x : z) x = rng.uniform01() * 2.0 - 1.0;
    std::vector<double> ref(2 * n, 0.0);
    cs::force(cs::Kind::kScalar);
    cs::scale_pairs(s.data(), z.data(), ref.data(), n);
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      std::vector<double> out(2 * n, 0.0);
      cs::scale_pairs(s.data(), z.data(), out.data(), n);
      EXPECT_EQ(
          std::memcmp(out.data(), ref.data(), 2 * n * sizeof(double)), 0)
          << cs::kind_name(kind) << " n=" << n;
    }
    // In-place use (out aliases z), as the Davies-Harte refill does.
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      std::vector<double> inplace = z;
      cs::scale_pairs(s.data(), inplace.data(), inplace.data(), n);
      EXPECT_EQ(
          std::memcmp(inplace.data(), ref.data(), 2 * n * sizeof(double)), 0)
          << cs::kind_name(kind) << " n=" << n;
    }
  }
}

TEST(SimdScaledRealStride2, BitIdenticalAcrossKinds) {
  ForceGuard guard;
  cu::Xoshiro256pp rng(42);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 100u, 513u}) {
    std::vector<double> in(2 * n);
    for (auto& x : in) x = rng.uniform01() * 2.0 - 1.0;
    const double norm = 1.0 / std::sqrt(1024.0);
    std::vector<double> ref(n, 0.0);
    cs::force(cs::Kind::kScalar);
    cs::scaled_real_stride2(in.data(), norm, ref.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(ref[j], in[2 * j] * norm);
    }
    for (const cs::Kind kind : supported_kinds()) {
      cs::force(kind);
      std::vector<double> out(n, 0.0);
      cs::scaled_real_stride2(in.data(), norm, out.data(), n);
      EXPECT_EQ(std::memcmp(out.data(), ref.data(), n * sizeof(double)), 0)
          << cs::kind_name(kind) << " n=" << n;
    }
  }
}
