// Unit tests for the online statistics accumulators.

#include "cts/util/accumulator.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cu = cts::util;

TEST(MomentAccumulator, BasicMoments) {
  cu::MomentAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Population variance is 4; unbiased sample variance = 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(MomentAccumulator, EmptyIsSafe) {
  cu::MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.standard_error(), 0.0);
}

TEST(MomentAccumulator, MergeMatchesSequential) {
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(std::sin(i) * 10 + i % 7);

  cu::MomentAccumulator sequential;
  for (const double x : data) sequential.add(x);

  cu::MomentAccumulator left, right;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (i < 300 ? left : right).add(data[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(MomentAccumulator, MergeWithEmptySides) {
  cu::MomentAccumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  cu::MomentAccumulator c;
  c.merge(a);  // empty lhs: copy
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(MomentAccumulator, StandardErrorShrinksWithN) {
  cu::MomentAccumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.standard_error(), large.standard_error());
}

TEST(CompensatedSum, RecoversSmallAddends) {
  cu::CompensatedSum sum;
  sum.add(1e16);
  for (int i = 0; i < 10; ++i) sum.add(1.0);
  sum.add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 10.0);
}

TEST(CompensatedSum, MergePreservesTotal) {
  cu::CompensatedSum a, b;
  for (int i = 0; i < 100; ++i) a.add(0.1);
  for (int i = 0; i < 100; ++i) b.add(0.2);
  a.merge(b);
  EXPECT_NEAR(a.value(), 30.0, 1e-12);
}
