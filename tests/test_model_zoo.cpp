// Unit tests for the model zoo: the canonical V^v, Z^a, S, L constructions.

#include "cts/fit/model_zoo.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/stats/ks.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(ModelZoo, AllModelsShareTheCommonMarginal) {
  const std::vector<cf::ModelSpec> models = {
      cf::make_vv(0.67), cf::make_vv(1.0),  cf::make_vv(1.5),
      cf::make_za(0.7),  cf::make_za(0.975), cf::make_l(),
      cf::make_dar_matched_to_za(0.975, 2)};
  for (const auto& m : models) {
    EXPECT_DOUBLE_EQ(m.mean, 500.0) << m.name;
    EXPECT_DOUBLE_EQ(m.variance, 5000.0) << m.name;
    ASSERT_NE(m.acf, nullptr) << m.name;
    EXPECT_DOUBLE_EQ(m.acf->at(0), 1.0) << m.name;
  }
}

TEST(ModelZoo, VvFamilyPinsFirstLag) {
  const cf::ModelSpec v067 = cf::make_vv(0.67);
  const cf::ModelSpec v100 = cf::make_vv(1.0);
  const cf::ModelSpec v150 = cf::make_vv(1.5);
  EXPECT_NEAR(v067.acf->at(1), v100.acf->at(1), 1e-10);
  EXPECT_NEAR(v100.acf->at(1), v150.acf->at(1), 1e-10);
  // The next few lags stay close (paper Fig. 3-a; the paper's own
  // construction spreads by ~0.06 at lag 5, since only lag 1 is pinned).
  for (std::size_t k = 2; k <= 5; ++k) {
    EXPECT_NEAR(v067.acf->at(k), v150.acf->at(k), 0.08) << "lag " << k;
  }
  // Long-lag correlations must genuinely differ (that's the experiment):
  // the v/(v+1) weights give a ratio -> (0.6/0.4) = 1.5 asymptotically.
  EXPECT_GT(v150.acf->at(500) / v067.acf->at(500), 1.4);
}

TEST(ModelZoo, ZaFamilyVariesShortLagsOnly) {
  const cf::ModelSpec z07 = cf::make_za(0.7);
  const cf::ModelSpec z99 = cf::make_za(0.99);
  // Strongly different short-term correlations...
  EXPECT_GT(z99.acf->at(5) - z07.acf->at(5), 0.2);
  // ...but identical long-term correlations (same FBNDP component).
  EXPECT_NEAR(z07.acf->at(2000), z99.acf->at(2000), 1e-6);
}

TEST(ModelZoo, ZaAcfMatchesEquationFive) {
  const cf::ModelSpec z = cf::make_za(0.9);
  // r(k) = 0.5 * rX(k) + 0.5 * 0.9^k with rX the alpha=0.8 exact-LRD ACF
  // of weight 0.9.
  const cts::core::ExactLrdAcf lrd(0.9, 0.9);  // H = 0.9, w = 0.9
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{3}, std::size_t{10}, std::size_t{100}}) {
    const double expected =
        0.5 * lrd.at(k) + 0.5 * std::pow(0.9, static_cast<double>(k));
    EXPECT_NEAR(z.acf->at(k), expected, 1e-10) << "lag " << k;
  }
}

TEST(ModelZoo, DarMatchedReproducesFirstPLags) {
  for (const double a : {0.7, 0.975}) {
    const cf::ModelSpec z = cf::make_za(a);
    for (const std::size_t p : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      const cf::ModelSpec s = cf::make_dar_matched_to_za(a, p);
      for (std::size_t k = 1; k <= p; ++k) {
        EXPECT_NEAR(s.acf->at(k), z.acf->at(k), 1e-8)
            << "a=" << a << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(ModelZoo, LMatchesPaperAlpha) {
  const cf::MixtureReport report = cf::report_l();
  // Paper: alpha = 0.72 (H = 0.86); our independent fit should land close.
  EXPECT_NEAR(report.alpha, 0.72, 0.04);
  EXPECT_NEAR(report.t0_msec, 1.83, 0.25);
  EXPECT_EQ(report.M, 30u);
  EXPECT_NEAR(report.lambda, 12500.0, 1e-6);
}

TEST(ModelZoo, LTailTracksZaTail) {
  const cf::ModelSpec z = cf::make_za(0.9);
  const cf::ModelSpec l = cf::make_l();
  // Fig. 3-b: close long-term correlations over 100..1000 lags (log space).
  for (const std::size_t k : {std::size_t{100}, std::size_t{300},
                              std::size_t{1000}}) {
    EXPECT_NEAR(std::log(l.acf->at(k)), std::log(z.acf->at(k)), 0.25)
        << "lag " << k;
  }
}

TEST(ModelZoo, ReportsMatchTable1) {
  const cf::MixtureReport za = cf::report_za(0.975);
  EXPECT_NEAR(za.lambda, 6250.0, 1e-9);
  EXPECT_NEAR(za.t0_msec, 2.57, 0.01);
  EXPECT_EQ(za.M, 15u);

  for (const double v : {0.67, 1.0, 1.5}) {
    const cf::MixtureReport vv = cf::report_vv(v);
    EXPECT_NEAR(vv.t0_msec, 3.48, 0.01) << "v=" << v;
    EXPECT_NEAR(vv.a, 0.8, 0.02) << "v=" << v;
  }
  // lambda rows: ~5000 / 6250 / 7500 cells/s.
  EXPECT_NEAR(cf::report_vv(1.0).lambda, 6250.0, 1.0);
  EXPECT_NEAR(cf::report_vv(0.67).lambda, 5000.0, 30.0);
  EXPECT_NEAR(cf::report_vv(1.5).lambda, 7500.0, 10.0);
}

TEST(ModelZoo, SimulatedMarginalIsGaussian) {
  // The keystone of the paper's experimental design: simulated frames of
  // Z^a pass a KS normality check against N(500, 5000).
  const cf::ModelSpec z = cf::make_za(0.9);
  auto source = z.make_source(12345);
  std::vector<double> sample(50000);
  for (auto& x : sample) x = source->next_frame();
  const cs::KsResult ks = cs::ks_test_normal(sample, 500.0, 5000.0);
  // Correlated samples inflate the KS statistic; we only require the
  // distributional distance to be small, not the i.i.d. p-value.
  EXPECT_LT(ks.statistic, 0.05);
}

TEST(ModelZoo, SimulatedMomentsMatchSpec) {
  // Pool independent sources: single-path means of H ~ 0.9-0.95 processes
  // converge at n^{H-1}, far too slowly for a tight one-path assertion.
  // (V^0.67 rather than V^1.5: same code path, ~50x cheaper ON/OFF
  // bookkeeping -- the alpha = 0.9 family's crossover scale A shrinks as
  // R^{-10}.)
  for (const auto& spec : {cf::make_za(0.7), cf::make_vv(0.67)}) {
    cu::MomentAccumulator acc;
    for (int s = 0; s < 24; ++s) {
      auto source = spec.make_source(777 + static_cast<std::uint64_t>(s));
      for (int i = 0; i < 30000; ++i) acc.add(source->next_frame());
    }
    EXPECT_NEAR(acc.mean(), spec.mean, 25.0) << spec.name;
    EXPECT_NEAR(acc.variance(), spec.variance, 0.3 * spec.variance)
        << spec.name;
  }
}

TEST(ModelZoo, WhiteAndAr1References) {
  const cf::ModelSpec white = cf::make_white();
  EXPECT_DOUBLE_EQ(white.acf->at(1), 0.0);
  const cf::ModelSpec ar1 = cf::make_ar1(0.6);
  EXPECT_NEAR(ar1.acf->at(2), 0.36, 1e-12);
  auto source = ar1.make_source(5);
  EXPECT_DOUBLE_EQ(source->mean(), 500.0);
}

TEST(ModelZoo, RejectsBadParameters) {
  EXPECT_THROW(cf::make_vv(0.0), cu::InvalidArgument);
  EXPECT_THROW(cf::make_za(1.0), cu::InvalidArgument);
  EXPECT_THROW(cf::make_dar_matched_to_za(0.9, 0), cu::InvalidArgument);
}
