#include "cts/obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "cts/obs/json.hpp"

namespace obs = cts::obs;

namespace {

/// Resets the global recorder around each test (it is process-wide state).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::global().disable();
    obs::TraceRecorder::global().reset();
  }
  void TearDown() override {
    obs::TraceRecorder::global().disable();
    obs::TraceRecorder::global().reset();
  }
};

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  {
    CTS_TRACE_SPAN("should_not_appear");
  }
  EXPECT_EQ(obs::TraceRecorder::global().event_count(), 0u);
}

TEST_F(TraceTest, NestedSpansRecordContainedDurations) {
  obs::TraceRecorder::global().enable();
  {
    CTS_TRACE_SPAN("outer");
    {
      CTS_TRACE_SPAN("inner");
    }
  }
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close innermost-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The inner span starts no earlier and lasts no longer than the outer.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
}

TEST_F(TraceTest, SpansOnDifferentThreadsGetDistinctTids) {
  obs::TraceRecorder::global().enable();
  {
    CTS_TRACE_SPAN("main_thread");
  }
  std::thread worker([]() { obs::ScopedSpan span("worker_thread"); });
  worker.join();
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  obs::TraceRecorder::global().enable();
  {
    obs::ScopedSpan span("phase \"quoted\"\n");  // name needing escapes
  }
  std::ostringstream os;
  obs::TraceRecorder::global().write_json(os);
  const std::string text = os.str();
  std::string error;
  EXPECT_TRUE(obs::json_parse_check(text, &error)) << error;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, EnableMidSpanDoesNotRecordHalfSpan) {
  // A span opened while disabled must not record even if the recorder is
  // enabled before it closes (it never captured a start time).
  {
    obs::ScopedSpan span("opened_disabled");
    obs::TraceRecorder::global().enable();
  }
  EXPECT_EQ(obs::TraceRecorder::global().event_count(), 0u);
}

TEST_F(TraceTest, WriteCreatesAParsableFile) {
  obs::TraceRecorder::global().enable();
  {
    CTS_TRACE_SPAN("to_file");
  }
  const std::string path =
      ::testing::TempDir() + "/cts_trace_test.json";
  ASSERT_TRUE(obs::TraceRecorder::global().write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::json_parse_check(buffer.str(), &error)) << error;
}

}  // namespace
