// Unit tests for DAR(p) fitting.

#include "cts/fit/dar_fit.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/acf_model.hpp"
#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cc = cts::core;
namespace cu = cts::util;

TEST(FitDar, OrderOneRecoversRho) {
  const cf::DarFit fit = cf::fit_dar({0.82});
  EXPECT_NEAR(fit.rho, 0.82, 1e-12);
  ASSERT_EQ(fit.lag_probs.size(), 1u);
  EXPECT_NEAR(fit.lag_probs[0], 1.0, 1e-12);
  EXPECT_LT(fit.residual, 1e-10);
}

TEST(FitDar, MatchesTargetsExactlyForHigherOrders) {
  // Targets generated from a known DAR(3) so the fit must round-trip.
  const double rho = 0.85;
  const std::vector<double> probs = {0.6, 0.25, 0.15};
  const cc::DarAcf truth(rho, probs);
  for (const std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<double> targets(p);
    for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = truth.at(k);
    const cf::DarFit fit = cf::fit_dar(targets);
    EXPECT_LT(fit.residual, 1e-9) << "p=" << p;
    const cc::DarAcf refit(fit.rho, fit.lag_probs);
    for (std::size_t k = 1; k <= p; ++k) {
      EXPECT_NEAR(refit.at(k), targets[k - 1], 1e-9) << "p=" << p << " k=" << k;
    }
  }
  // Order 3 should exactly recover the generating parameters.
  std::vector<double> t3(3);
  for (std::size_t k = 1; k <= 3; ++k) t3[k - 1] = truth.at(k);
  const cf::DarFit fit3 = cf::fit_dar(t3);
  EXPECT_NEAR(fit3.rho, rho, 1e-9);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(fit3.lag_probs[i], probs[i], 1e-8);
  }
}

TEST(FitDar, GeometricTargetsCollapseToOrderOneStructure) {
  // Geometric targets a^k are AR(1)-like; the DAR(p) fit puts all lag mass
  // on lag 1.
  const double a = 0.75;
  const cf::DarFit fit = cf::fit_dar({a, a * a, a * a * a});
  EXPECT_NEAR(fit.rho, a, 1e-10);
  EXPECT_NEAR(fit.lag_probs[0], 1.0, 1e-8);
  EXPECT_NEAR(fit.lag_probs[1], 0.0, 1e-8);
  EXPECT_NEAR(fit.lag_probs[2], 0.0, 1e-8);
}

TEST(FitDar, RejectsInfeasibleTargets) {
  // Strong negative lag-1 cannot be a DAR process (rho >= 0).
  EXPECT_THROW(cf::fit_dar({-0.8}), cu::InvalidArgument);
  // |r| >= 1 is not a correlation.
  EXPECT_THROW(cf::fit_dar({1.0}), cu::InvalidArgument);
  EXPECT_THROW(cf::fit_dar({}), cu::InvalidArgument);
}

TEST(FitDarParams, PackagesMarginal) {
  const cts::proc::DarParams params =
      cf::fit_dar_params({0.7, 0.55}, 500.0, 5000.0);
  EXPECT_DOUBLE_EQ(params.mean, 500.0);
  EXPECT_DOUBLE_EQ(params.variance, 5000.0);
  EXPECT_NO_THROW(params.validate());
}

TEST(FitDar, ZeroTargetsYieldWhiteDar) {
  const cf::DarFit fit = cf::fit_dar({0.0, 0.0});
  EXPECT_NEAR(fit.rho, 0.0, 1e-12);
}
