// Unit tests for the Hurst estimators -- validated against generators with
// known H, the same methodology Beran et al. applied to video traces.

#include "cts/stats/hurst.hpp"

#include <gtest/gtest.h>

#include "cts/proc/fgn.hpp"
#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  cu::Xoshiro256pp rng(seed);
  cu::NormalSampler normal;
  std::vector<double> x(n);
  for (auto& v : x) v = normal(rng);
  return x;
}

std::vector<double> fgn_trace(double h, std::size_t n, std::uint64_t seed) {
  cp::FgnParams p;
  p.hurst = h;
  p.mean = 0.0;
  p.variance = 1.0;
  cp::FgnDaviesHarte source(p, 1 << 15, seed);
  std::vector<double> x(n);
  for (auto& v : x) v = source.next_frame();
  return x;
}

}  // namespace

TEST(VarianceTime, WhiteNoiseGivesHalf) {
  const auto x = white_noise(1 << 16, 101);
  const cs::HurstEstimate est = cs::hurst_variance_time(x);
  EXPECT_NEAR(est.hurst, 0.5, 0.06);
  EXPECT_GT(est.points, 5u);
}

TEST(VarianceTime, RecoversFgnHurst) {
  const auto x = fgn_trace(0.8, 1 << 17, 55);
  const cs::HurstEstimate est = cs::hurst_variance_time(x);
  EXPECT_NEAR(est.hurst, 0.8, 0.07);
  EXPECT_GT(est.r_squared, 0.95);
}

TEST(VarianceTime, RejectsShortSeries) {
  EXPECT_THROW(cs::hurst_variance_time(std::vector<double>(8, 1.0)),
               cu::InvalidArgument);
}

TEST(RescaledRange, WhiteNoiseNearHalf) {
  const auto x = white_noise(1 << 16, 202);
  const cs::HurstEstimate est = cs::hurst_rescaled_range(x);
  // R/S is biased upward on short ranges; the classical tolerance is wide.
  EXPECT_NEAR(est.hurst, 0.55, 0.08);
}

TEST(RescaledRange, DetectsStrongLrd) {
  const auto x = fgn_trace(0.85, 1 << 17, 77);
  const cs::HurstEstimate est = cs::hurst_rescaled_range(x);
  EXPECT_GT(est.hurst, 0.7);
}

TEST(Gph, WhiteNoiseGivesHalf) {
  const auto x = white_noise(1 << 14, 303);
  const cs::HurstEstimate est = cs::hurst_gph(x);
  EXPECT_NEAR(est.hurst, 0.5, 0.12);
}

TEST(Gph, RecoversFgnHurst) {
  const auto x = fgn_trace(0.8, 1 << 15, 99);
  const cs::HurstEstimate est = cs::hurst_gph(x);
  EXPECT_NEAR(est.hurst, 0.8, 0.12);
}

TEST(Gph, RejectsBadPower) {
  const auto x = white_noise(1024, 1);
  EXPECT_THROW(cs::hurst_gph(x, 0.0), cu::InvalidArgument);
  EXPECT_THROW(cs::hurst_gph(x, 1.0), cu::InvalidArgument);
}

class HurstSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(HurstSweepTest, VarianceTimeTracksTrueH) {
  const double h = GetParam();
  const auto x = fgn_trace(h, 1 << 17, static_cast<std::uint64_t>(h * 1000));
  const cs::HurstEstimate est = cs::hurst_variance_time(x);
  EXPECT_NEAR(est.hurst, h, 0.08) << "true H = " << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, HurstSweepTest,
                         ::testing::Values(0.6, 0.7, 0.8, 0.9));
