// JsonValue DOM parser (json_parse) and JsonWriter edge cases: the parser
// backs cts_benchd's aggregation of per-run perf reports and cts_benchcmp's
// BENCH_*.json diffing, so schema navigation errors must surface as typed
// exceptions; the writer must map non-finite doubles to null or our own
// validator would reject our own reports.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

TEST(JsonParse, ScalarValues) {
  EXPECT_TRUE(obs::json_parse("null").is_null());
  EXPECT_TRUE(obs::json_parse("true").as_bool());
  EXPECT_FALSE(obs::json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(obs::json_parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(obs::json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ObjectPreservesMemberOrder) {
  const obs::JsonValue v =
      obs::json_parse(R"({"z":1,"a":{"nested":[1,2,3]},"m":"s"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "m");
  EXPECT_DOUBLE_EQ(v.at("z").as_number(), 1.0);
  const obs::JsonValue& nested = v.at("a").at("nested");
  ASSERT_TRUE(nested.is_array());
  ASSERT_EQ(nested.size(), 3u);
  EXPECT_DOUBLE_EQ(nested.at(2).as_number(), 3.0);
}

TEST(JsonParse, FindReturnsNullptrForMissingOrNonObject) {
  const obs::JsonValue v = obs::json_parse(R"({"k":1})");
  EXPECT_NE(v.find("k"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_EQ(obs::json_parse("[1]").find("k"), nullptr);
  EXPECT_THROW(v.at("absent"), cts::util::InvalidArgument);
  EXPECT_THROW(v.at(std::size_t{0}), cts::util::InvalidArgument);
}

TEST(JsonParse, TypeMismatchThrows) {
  const obs::JsonValue v = obs::json_parse(R"({"k":"text"})");
  EXPECT_THROW(v.at("k").as_number(), cts::util::InvalidArgument);
  EXPECT_THROW(v.at("k").as_bool(), cts::util::InvalidArgument);
  EXPECT_NO_THROW(v.at("k").as_string());
}

TEST(JsonParse, UnescapesStrings) {
  const obs::JsonValue v =
      obs::json_parse(R"("a\"b\\c\/d\n\tAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParse, DecodesSurrogatePairs) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(obs::json_parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  // Lone high surrogate -> replacement character.
  EXPECT_EQ(obs::json_parse(R"("\ud83dx")").as_string(), "\xef\xbf\xbdx");
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  try {
    obs::json_parse("{\"k\":1,}");
    FAIL() << "expected InvalidArgument";
  } catch (const cts::util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
  EXPECT_THROW(obs::json_parse(""), cts::util::InvalidArgument);
  EXPECT_THROW(obs::json_parse("[1,2"), cts::util::InvalidArgument);
  EXPECT_THROW(obs::json_parse("1 2"), cts::util::InvalidArgument);
}

TEST(JsonParse, RoundTripsRunReportStyleDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("cts.perf.v1");
  w.key("resources").begin_object();
  w.key("wall_s").value(1.25);
  w.key("max_rss_kb").value(std::int64_t{43210});
  w.end_object();
  w.end_object();
  const obs::JsonValue v = obs::json_parse(os.str());
  EXPECT_EQ(v.at("schema").as_string(), "cts.perf.v1");
  EXPECT_DOUBLE_EQ(v.at("resources").at("wall_s").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(v.at("resources").at("max_rss_kb").as_number(), 43210.0);
}

// Satellite: a NaN/Inf metric must serialise as null, not as "nan"/"inf"
// (which RFC 8259 — and our own validator — reject).
TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("nan").value(std::nan(""));
  w.key("pinf").value(std::numeric_limits<double>::infinity());
  w.key("ninf").value(-std::numeric_limits<double>::infinity());
  w.key("finite").value(2.5);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"nan":null,"pinf":null,"ninf":null,"finite":2.5})");

  std::string error;
  EXPECT_TRUE(obs::json_parse_check(os.str(), &error)) << error;
  const obs::JsonValue v = obs::json_parse(os.str());
  EXPECT_TRUE(v.at("nan").is_null());
  EXPECT_TRUE(v.at("pinf").is_null());
  EXPECT_TRUE(v.at("ninf").is_null());
}

}  // namespace
