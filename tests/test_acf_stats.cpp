// Unit tests for empirical ACF estimation and series aggregation.

#include "cts/stats/acf.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cs = cts::stats;
namespace cu = cts::util;

TEST(SampleMoments, KnownSeries) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(cs::sample_mean(x), 3.0);
  EXPECT_DOUBLE_EQ(cs::sample_variance(x), 2.0);  // biased 1/n
}

TEST(SampleMoments, RejectEmpty) {
  EXPECT_THROW(cs::sample_mean({}), cu::InvalidArgument);
}

TEST(Autocovariance, WhiteNoiseIsUncorrelated) {
  cu::Xoshiro256pp rng(13);
  std::vector<double> x(100000);
  for (auto& v : x) v = rng.uniform01() - 0.5;
  const std::vector<double> gamma = cs::autocovariance(x, 5);
  EXPECT_NEAR(gamma[0], 1.0 / 12.0, 0.002);  // variance of U(-1/2, 1/2)
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(gamma[k], 0.0, 0.002) << "lag " << k;
  }
}

TEST(Autocorrelation, LagZeroIsOne) {
  cu::Xoshiro256pp rng(17);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.uniform01();
  const std::vector<double> r = cs::autocorrelation(x, 3);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLagOne) {
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const std::vector<double> r = cs::autocorrelation(x, 2);
  EXPECT_NEAR(r[1], -1.0, 0.01);
  EXPECT_NEAR(r[2], 1.0, 0.01);
}

TEST(Autocorrelation, RejectsDegenerateInput) {
  EXPECT_THROW(cs::autocorrelation({1.0, 1.0, 1.0}, 1), cu::InvalidArgument);
  EXPECT_THROW(cs::autocovariance({1.0, 2.0}, 5), cu::InvalidArgument);
}

TEST(AggregateSeries, BlockMeans) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> agg = cs::aggregate_series(x, 3);
  ASSERT_EQ(agg.size(), 2u);  // trailing partial block dropped
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 5.0);
}

TEST(AggregateSeries, IdentityAtMOne) {
  const std::vector<double> x = {3, 1, 4};
  const std::vector<double> agg = cs::aggregate_series(x, 1);
  EXPECT_EQ(agg, x);
}

TEST(AggregateSeries, RejectsZeroM) {
  EXPECT_THROW(cs::aggregate_series({1.0}, 0), cu::InvalidArgument);
}
