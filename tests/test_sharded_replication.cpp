// Unit tests for process-level replication sharding: the determinism
// matrix (thread count x shard layout), the cts.shard.v1 round-trip, the
// shard merge, the metrics-snapshot round-trip, and the env-override
// validation the sharded path depends on.

#include "cts/sim/shard.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/sim/replication.hpp"
#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace co = cts::obs;
namespace cu = cts::util;

namespace {

/// 5 replications: both 5/2 (2+3) and 5/3 (1+2+2) split unevenly.
cm::ReplicationConfig small_config() {
  cm::ReplicationConfig config;
  config.replications = 5;
  config.frames_per_replication = 3000;
  config.warmup_frames = 200;
  config.n_sources = 10;
  config.capacity_cells = 10 * 520.0;
  config.buffer_sizes_cells = {0.0, 500.0};
  config.bop_thresholds_cells = {200.0};
  config.progress = false;
  return config;
}

/// Runs every shard of an n-shard layout and merges the slices the way
/// tools/cts_simd does: concatenate in shard order, re-aggregate.
cm::ReplicationResult run_sharded(const cf::ModelSpec& model,
                                  cm::ReplicationConfig config,
                                  std::size_t shard_count) {
  std::vector<cm::ReplicationSample> samples;
  for (std::size_t i = 0; i < shard_count; ++i) {
    config.shard_index = i;
    config.shard_count = shard_count;
    cm::ReplicationResult slice = cm::run_replicated(model, config);
    samples.insert(samples.end(), slice.samples.begin(), slice.samples.end());
  }
  return cm::aggregate_replications(config.buffer_sizes_cells,
                                    config.bop_thresholds_cells,
                                    std::move(samples));
}

void expect_bit_identical(const cm::ReplicationResult& a,
                          const cm::ReplicationResult& b) {
  // EXPECT_EQ, not EXPECT_NEAR: the sharding contract is bit-identity.
  EXPECT_EQ(a.total_arrived_cells, b.total_arrived_cells);
  EXPECT_EQ(a.total_frames, b.total_frames);
  ASSERT_EQ(a.clr.size(), b.clr.size());
  for (std::size_t i = 0; i < a.clr.size(); ++i) {
    EXPECT_EQ(a.clr[i].buffer_cells, b.clr[i].buffer_cells);
    EXPECT_EQ(a.clr[i].pooled_clr, b.clr[i].pooled_clr);
    EXPECT_EQ(a.clr[i].clr.mean, b.clr[i].clr.mean);
    EXPECT_EQ(a.clr[i].clr.half_width, b.clr[i].clr.half_width);
    EXPECT_EQ(a.clr[i].clr.samples, b.clr[i].clr.samples);
  }
  ASSERT_EQ(a.bop.size(), b.bop.size());
  for (std::size_t i = 0; i < a.bop.size(); ++i) {
    EXPECT_EQ(a.bop[i].pooled_bop, b.bop[i].pooled_bop);
    EXPECT_EQ(a.bop[i].bop.mean, b.bop[i].bop.mean);
    EXPECT_EQ(a.bop[i].bop.half_width, b.bop[i].bop.half_width);
  }
}

/// A worker's shard file as the ShardRecorder would emit it, built from an
/// in-process run of that shard's slice.
cm::ShardFile make_shard_file(const cf::ModelSpec& model,
                              cm::ReplicationConfig config, std::size_t index,
                              std::size_t count) {
  config.shard_index = index;
  config.shard_count = count;
  cm::ReplicationResult slice = cm::run_replicated(model, config);
  cm::ShardFile file;
  file.shard_index = index;
  file.shard_count = count;
  cm::ShardExperiment experiment;
  experiment.label = "test";
  experiment.config = config;
  experiment.samples = slice.samples;
  file.experiments.push_back(std::move(experiment));
  file.metrics.add("test.runs", 1);
  file.metrics.add_sum("test.cells", slice.total_arrived_cells);
  return file;
}

std::string to_json(const cm::ShardFile& file) {
  std::ostringstream os;
  cm::write_shard_json(os, file);
  return os.str();
}

}  // namespace

TEST(ShardSpec, ParsesAndFormats) {
  const cm::ShardSpec spec = cm::parse_shard_spec("2/5");
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 5u);
  EXPECT_EQ(cm::format_shard_spec(spec), "2/5");
  EXPECT_EQ(cm::parse_shard_spec("0/1").count, 1u);
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "3", "/4", "3/", "4/4", "5/4", "-1/4", "a/4",
                          "1/b", "1/4x", "1.5/4"}) {
    EXPECT_THROW(cm::parse_shard_spec(bad), cu::InvalidArgument) << bad;
  }
}

TEST(ShardedReplication, DeterminismMatrix) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.threads = 1;
  const cm::ReplicationResult baseline = cm::run_replicated(model, config);
  ASSERT_EQ(baseline.samples.size(), config.replications);

  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      cm::ReplicationConfig c = small_config();
      c.threads = threads;
      expect_bit_identical(baseline, run_sharded(model, c, shards));
    }
  }
}

TEST(ShardedReplication, SlicesAreContiguousAndComplete) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();  // 5 reps
  config.shard_count = 3;
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < 3; ++i) {
    config.shard_index = i;
    const cm::ReplicationResult slice = cm::run_replicated(model, config);
    for (const cm::ReplicationSample& s : slice.samples) seen.push_back(s.rep);
  }
  // 5/3 splits 1+2+2 and covers every global index exactly once, in order.
  ASSERT_EQ(seen.size(), 5u);
  for (std::uint64_t k = 0; k < 5; ++k) EXPECT_EQ(seen[k], k);
}

TEST(ShardedReplication, RejectsBadShardConfig) {
  const cf::ModelSpec model = cf::make_ar1(0.5);
  cm::ReplicationConfig config = small_config();
  config.shard_index = 2;
  config.shard_count = 2;
  EXPECT_THROW(cm::run_replicated(model, config), cu::InvalidArgument);
  config = small_config();
  config.shard_count = 0;
  EXPECT_THROW(cm::run_replicated(model, config), cu::InvalidArgument);
  config = small_config();  // 5 reps cannot feed 6 shards
  config.shard_count = 6;
  EXPECT_THROW(cm::run_replicated(model, config), cu::InvalidArgument);
}

TEST(ShardFile, JsonRoundTripIsExact) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.master_seed = (1ULL << 53) + 12345;  // not representable as double
  const cm::ShardFile file = make_shard_file(model, config, 1, 2);
  const cm::ShardFile parsed = cm::parse_shard_file(to_json(file));

  EXPECT_EQ(parsed.shard_index, 1u);
  EXPECT_EQ(parsed.shard_count, 2u);
  ASSERT_EQ(parsed.experiments.size(), 1u);
  const cm::ShardExperiment& a = file.experiments[0];
  const cm::ShardExperiment& b = parsed.experiments[0];
  EXPECT_EQ(b.label, "test");
  EXPECT_EQ(b.config.master_seed, config.master_seed);  // exact via string
  EXPECT_EQ(b.config.replications, a.config.replications);
  EXPECT_EQ(b.config.buffer_sizes_cells, a.config.buffer_sizes_cells);
  ASSERT_EQ(b.samples.size(), a.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(b.samples[i].rep, a.samples[i].rep);
    EXPECT_EQ(b.samples[i].run.frames, a.samples[i].run.frames);
    EXPECT_EQ(b.samples[i].run.arrived_cells, a.samples[i].run.arrived_cells);
    ASSERT_EQ(b.samples[i].run.clr.size(), a.samples[i].run.clr.size());
    for (std::size_t j = 0; j < a.samples[i].run.clr.size(); ++j) {
      EXPECT_EQ(b.samples[i].run.clr[j].lost_cells,
                a.samples[i].run.clr[j].lost_cells);
      EXPECT_EQ(b.samples[i].run.clr[j].loss_frames,
                a.samples[i].run.clr[j].loss_frames);
    }
  }
  EXPECT_EQ(parsed.metrics.counters().at("test.runs"), 1u);
  EXPECT_EQ(parsed.metrics.sums().at("test.cells").value(),
            file.metrics.sums().at("test.cells").value());
}

TEST(ShardFile, ParserRejectsWrongSchema) {
  EXPECT_THROW(cm::parse_shard_file("{\"schema\":\"other.v1\"}"),
               cu::InvalidArgument);
  EXPECT_THROW(cm::parse_shard_file("{}"), cu::InvalidArgument);
  EXPECT_THROW(cm::parse_shard_file("not json"), cu::InvalidArgument);
}

TEST(ShardMerge, WriteParseMergeIsBitIdentical) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.threads = 1;
  const cm::ReplicationResult baseline = cm::run_replicated(model, config);

  // Full pipeline: run each shard, serialize, parse back, merge.
  std::vector<cm::ShardFile> files;
  for (std::size_t i = 0; i < 2; ++i) {
    files.push_back(
        cm::parse_shard_file(to_json(make_shard_file(model, config, i, 2))));
  }
  const cm::MergedShards merged = cm::merge_shard_files(files);
  ASSERT_EQ(merged.experiments.size(), 1u);
  expect_bit_identical(baseline, merged.experiments[0].result);
  EXPECT_EQ(merged.experiments[0].config.shard_count, 1u);
  // Registry snapshots fold across shards: counters add, sums accumulate.
  EXPECT_EQ(merged.metrics.counters().at("test.runs"), 2u);
}

TEST(ShardMerge, RejectsIncompleteOrInconsistentSets) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  const cm::ReplicationConfig config = small_config();
  const cm::ShardFile s0 = make_shard_file(model, config, 0, 2);
  const cm::ShardFile s1 = make_shard_file(model, config, 1, 2);

  EXPECT_THROW(cm::merge_shard_files({}), cu::InvalidArgument);
  EXPECT_THROW(cm::merge_shard_files({s0}), cu::InvalidArgument);     // missing
  EXPECT_THROW(cm::merge_shard_files({s0, s0}), cu::InvalidArgument);  // dup

  cm::ShardFile tampered = s1;
  tampered.experiments[0].config.master_seed ^= 1;
  EXPECT_THROW(cm::merge_shard_files({s0, tampered}), cu::InvalidArgument);

  cm::ShardFile relabeled = s1;
  relabeled.experiments[0].label = "other";
  EXPECT_THROW(cm::merge_shard_files({s0, relabeled}), cu::InvalidArgument);
}

TEST(ShardRecorder, RecordsRunsAndWritesFile) {
  const std::string path =
      testing::TempDir() + "/cts_shard_recorder_test.json";
  cm::ShardRecorder& recorder = cm::ShardRecorder::global();
  recorder.enable(path);
  EXPECT_TRUE(recorder.enabled());

  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.shard_index = 1;
  config.shard_count = 2;
  config.progress_label = "recorded";
  (void)cm::run_replicated(model, config);

  co::MetricsRegistry snapshot_source;
  snapshot_source.add("recorder.test", 7);
  ASSERT_TRUE(recorder.write(snapshot_source));
  recorder.disable();
  EXPECT_FALSE(recorder.enabled());

  const cm::ShardFile file = cm::read_shard_file(path);
  EXPECT_EQ(file.shard_index, 1u);
  EXPECT_EQ(file.shard_count, 2u);
  ASSERT_EQ(file.experiments.size(), 1u);
  EXPECT_EQ(file.experiments[0].label, "recorded");
  // Shard 1/2 of 5 reps runs global indices 2, 3, 4.
  ASSERT_EQ(file.experiments[0].samples.size(), 3u);
  EXPECT_EQ(file.experiments[0].samples[0].rep, 2u);
  EXPECT_EQ(file.metrics.counters().at("recorder.test"), 7u);
  std::remove(path.c_str());
}

TEST(MetricsSnapshot, RoundTripPreservesMergeState) {
  co::MetricsShard shard;
  shard.add("runs", 3);
  for (int i = 0; i < 1000; ++i) shard.add_sum("cells", 1e-3);
  shard.gauge("peak", 7.5, co::GaugeMode::kMax);
  shard.gauge("threads", 4.0);
  shard.observe("wall", 2.5, {1.0, 10.0});
  shard.observe("wall", 0.5, {1.0, 10.0});

  std::ostringstream os;
  co::JsonWriter w(os);
  co::write_metrics_snapshot(w, shard);
  const co::MetricsShard restored =
      co::metrics_snapshot_from_json(co::json_parse(os.str()));

  EXPECT_EQ(restored.counters().at("runs"), 3u);
  EXPECT_EQ(restored.sums().at("cells").value(),
            shard.sums().at("cells").value());
  EXPECT_EQ(restored.sums().at("cells").compensation(),
            shard.sums().at("cells").compensation());
  EXPECT_EQ(restored.gauges().at("peak").mode, co::GaugeMode::kMax);
  EXPECT_EQ(restored.gauges().at("peak").value, 7.5);
  const co::HistogramCell& h = restored.histograms().at("wall");
  EXPECT_EQ(h.buckets(), shard.histograms().at("wall").buckets());
  EXPECT_EQ(h.stats().count(), 2u);
  EXPECT_EQ(h.stats().mean(), shard.histograms().at("wall").stats().mean());
  EXPECT_EQ(h.stats().m2(), shard.histograms().at("wall").stats().m2());
  EXPECT_EQ(h.stats().min(), 0.5);
  EXPECT_EQ(h.stats().max(), 2.5);

  // A kMax gauge restored on another process keeps max semantics on merge.
  co::MetricsShard other;
  other.gauge("peak", 3.0, co::GaugeMode::kMax);
  other.merge(restored);
  EXPECT_EQ(other.gauges().at("peak").value, 7.5);
}

TEST(SeedProvenance, RegistryCarriesExactSeedAndFrameTotals) {
  co::MetricsRegistry& registry = co::MetricsRegistry::global();
  registry.reset();

  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.master_seed = (1ULL << 53) + 1;  // rounds away as a double
  (void)cm::run_replicated(model, config);

  // The split hi/lo gauges reconstruct the exact 64-bit seed; each half
  // fits a double exactly.
  const std::uint64_t hi =
      static_cast<std::uint64_t>(registry.gauge_value("sim.master_seed_hi"));
  const std::uint64_t lo =
      static_cast<std::uint64_t>(registry.gauge_value("sim.master_seed_lo"));
  EXPECT_EQ((hi << 32) | lo, config.master_seed);

  // Measured and warmup frames are recorded separately (the old
  // sim.frames_total silently disagreed with the progress total).
  EXPECT_EQ(registry.counter("sim.frames_total"),
            config.replications * config.frames_per_replication);
  EXPECT_EQ(registry.counter("sim.warmup_frames_total"),
            config.replications * config.warmup_frames);
  EXPECT_EQ(registry.counter("sim.replications"), config.replications);
  registry.reset();
}

TEST(EnvOverrides, RejectsInvalidValuesWithClearErrors) {
  const auto expect_rejects = [](const char* var, const char* value) {
    ::setenv(var, value, 1);
    try {
      cm::apply_env_overrides(cm::default_scale());
      ADD_FAILURE() << var << "=" << value << " was accepted";
    } catch (const cu::InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(var), std::string::npos) << what;
      EXPECT_NE(what.find(value), std::string::npos) << what;
    }
    ::unsetenv(var);
  };
  expect_rejects("REPRO_REPS", "-1");
  expect_rejects("REPRO_REPS", "0");
  expect_rejects("REPRO_REPS", "12abc");
  expect_rejects("REPRO_FRAMES", "0");
  expect_rejects("REPRO_FRAMES", "-7");
  expect_rejects("REPRO_SHARD", "junk");
  expect_rejects("REPRO_SHARD", "2/2");
}

TEST(EnvOverrides, AppliesShardSpec) {
  ::setenv("REPRO_SHARD", "1/3", 1);
  const cm::ReplicationConfig config =
      cm::apply_env_overrides(cm::default_scale());
  EXPECT_EQ(config.shard_index, 1u);
  EXPECT_EQ(config.shard_count, 3u);
  ::unsetenv("REPRO_SHARD");
}
