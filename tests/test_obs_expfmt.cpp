#include "cts/obs/expfmt.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace obs = cts::obs;

namespace {

std::string render(const obs::MetricsShard& shard,
                   const obs::OpenMetricsOptions& opts = {}) {
  std::ostringstream os;
  obs::write_openmetrics(os, shard, opts);
  return os.str();
}

void expect_valid(const std::string& text) {
  const std::vector<std::string> errors = obs::validate_openmetrics(text);
  EXPECT_TRUE(errors.empty()) << "first error: "
                              << (errors.empty() ? "" : errors.front())
                              << "\n--- text ---\n"
                              << text;
}

TEST(OpenMetricsName, SanitizesCharset) {
  EXPECT_EQ(obs::openmetrics_name("shardd.job_wall_ms"),
            "shardd_job_wall_ms");
  EXPECT_EQ(obs::openmetrics_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(obs::openmetrics_name("ns:ok"), "ns:ok");
  EXPECT_EQ(obs::openmetrics_name("9lives"), "_9lives");
  EXPECT_EQ(obs::openmetrics_name(""), "_");
}

TEST(OpenMetricsName, LabelEscape) {
  EXPECT_EQ(obs::openmetrics_label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(OpenMetrics, EmptyShardIsJustEof) {
  obs::MetricsShard shard;
  const std::string text = render(shard);
  EXPECT_EQ(text, "# EOF\n");
  expect_valid(text);
}

TEST(OpenMetrics, RendersEverySectionAndValidates) {
  obs::MetricsShard shard;
  shard.add("jobs.ok", 7);
  shard.add_sum("cells.total", 123.5);
  shard.gauge("queue.depth", 42.0, obs::GaugeMode::kMax);
  for (double v : {0.2, 0.5, 2.0, 50.0}) shard.observe("job.wall_ms", v);
  for (double v : {1.0, 2.0, 3.0, 400.0}) shard.observe_log("rpc.ms", v);

  const std::string text = render(shard);
  expect_valid(text);

  EXPECT_NE(text.find("# TYPE jobs_ok counter\n"), std::string::npos);
  EXPECT_NE(text.find("jobs_ok_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cells_total gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE job_wall_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("job_wall_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("job_wall_ms_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rpc_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("rpc_ms{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("rpc_ms_count 4\n"), std::string::npos);
  // Terminator is last.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetrics, ConstantLabelsOnEverySample) {
  obs::MetricsShard shard;
  shard.add("jobs", 1);
  for (double v : {1.0, 2.0}) shard.observe("wall_ms", v);
  obs::OpenMetricsOptions opts;
  opts.labels = {{"worker", "w\"1"}};
  const std::string text = render(shard, opts);
  expect_valid(text);
  EXPECT_NE(text.find("jobs_total{worker=\"w\\\"1\"} 1\n"),
            std::string::npos);
  // Bucket samples merge the constant labels with le.
  EXPECT_NE(text.find("wall_ms_bucket{worker=\"w\\\"1\",le=\"+Inf\"} 2\n"),
            std::string::npos);
}

TEST(OpenMetrics, HistogramBucketsAreCumulative) {
  obs::MetricsShard shard;
  for (double v : {0.05, 0.2, 0.2, 5.0, 1e9}) shard.observe("lat", v);
  const std::string text = render(shard);
  expect_valid(text);
  EXPECT_NE(text.find("lat_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"0.3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
}

// Same raw name as both histogram kinds: the summary family gets the
// _quantiles suffix so no family is declared twice.
TEST(OpenMetrics, CollidingFamilySuffixed) {
  obs::MetricsShard shard;
  shard.observe("job.wall_ms", 1.0);
  shard.observe_log("job.wall_ms", 1.0);
  const std::string text = render(shard);
  expect_valid(text);
  EXPECT_NE(text.find("# TYPE job_wall_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE job_wall_ms_quantiles summary\n"),
            std::string::npos);
}

TEST(OpenMetricsValidate, CatchesMissingEof) {
  const auto errors = obs::validate_openmetrics(
      "# TYPE a counter\na_total 1\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.back().find("EOF"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesUndeclaredFamily) {
  const auto errors = obs::validate_openmetrics("a_total 1\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("no preceding # TYPE"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesDuplicateTypeAndSample) {
  const auto errors = obs::validate_openmetrics(
      "# TYPE a counter\n# TYPE a counter\na_total 1\na_total 1\n# EOF\n");
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("declared twice"), std::string::npos);
  EXPECT_NE(errors[1].find("duplicate sample"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesNonCumulativeBuckets) {
  const auto errors = obs::validate_openmetrics(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 6\n"
      "h_count 6\n"
      "h_sum 1\n"
      "# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("not cumulative"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesMissingInfBucketAndCountMismatch) {
  auto errors = obs::validate_openmetrics(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("+Inf"), std::string::npos);

  errors = obs::validate_openmetrics(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 6\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("!= _count"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesSummaryWithoutQuantiles) {
  const auto errors = obs::validate_openmetrics(
      "# TYPE s summary\ns_count 3\ns_sum 1.5\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("no quantile samples"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesQuantileOutOfRange) {
  const auto errors = obs::validate_openmetrics(
      "# TYPE s summary\ns{quantile=\"1.5\"} 2\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("outside [0, 1]"), std::string::npos);
}

TEST(OpenMetricsValidate, CatchesGarbageValueAndContentAfterEof) {
  auto errors = obs::validate_openmetrics(
      "# TYPE g gauge\ng pancake\n# EOF\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("unparseable sample value"),
            std::string::npos);

  errors = obs::validate_openmetrics("# EOF\n# TYPE g gauge\n");
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("after '# EOF'"), std::string::npos);
}

TEST(OpenMetricsValidate, AcceptsInfNanAndTimestamps) {
  expect_valid(
      "# TYPE g gauge\n"
      "g{host=\"a\"} +Inf 1700000000\n"
      "g{host=\"b\"} NaN\n"
      "# EOF\n");
}

}  // namespace
