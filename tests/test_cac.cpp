// Unit tests for connection admission control.

#include "cts/atm/cac.hpp"

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

ca::CacProblem paper_problem() {
  ca::CacProblem p;
  p.capacity_cells_per_frame = 16140.0;  // 30 x 538
  p.buffer_cells = 4035.0;               // 10 ms at that drain rate
  p.log10_target_clr = -6.0;
  return p;
}

}  // namespace

TEST(CacProblem, Validation) {
  EXPECT_NO_THROW(paper_problem().validate());
  ca::CacProblem p = paper_problem();
  p.capacity_cells_per_frame = 0.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p = paper_problem();
  p.log10_target_clr = 0.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

TEST(CacBr, AdmitsReasonableCountAndMeetsTarget) {
  const cf::ModelSpec model = cf::make_za(0.9);
  const ca::CacResult result =
      ca::admissible_connections_br(model, paper_problem());
  // Peak-rate allocation would admit far fewer; mean-rate ~32.  Statistical
  // multiplexing should land strictly between, at a plausible count.
  EXPECT_GE(result.admissible, 15u);
  EXPECT_LE(result.admissible, 32u);
  EXPECT_LE(result.log10_bop_at_max, -6.0);
}

TEST(CacBr, MonotoneInQosTargetAndBuffer) {
  const cf::ModelSpec model = cf::make_za(0.975);
  ca::CacProblem loose = paper_problem();
  loose.log10_target_clr = -4.0;
  ca::CacProblem tight = paper_problem();
  tight.log10_target_clr = -9.0;
  EXPECT_GE(ca::admissible_connections_br(model, loose).admissible,
            ca::admissible_connections_br(model, tight).admissible);

  ca::CacProblem small_buf = paper_problem();
  small_buf.buffer_cells = 400.0;
  EXPECT_GE(ca::admissible_connections_br(model, paper_problem()).admissible,
            ca::admissible_connections_br(model, small_buf).admissible);
}

TEST(CacBr, LrdAndMatchedMarkovAdmitSimilarCounts) {
  // The paper's §5.4 punchline: the DAR model predicts nearly the same
  // admissible-connection count as the LRD trace model.
  const cf::ModelSpec za = cf::make_za(0.975);
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.975, 1);
  const auto n_za = ca::admissible_connections_br(za, paper_problem());
  const auto n_dar = ca::admissible_connections_br(dar, paper_problem());
  const auto diff = n_za.admissible > n_dar.admissible
                        ? n_za.admissible - n_dar.admissible
                        : n_dar.admissible - n_za.admissible;
  EXPECT_LE(diff, 2u);
}

TEST(CacBr, ZeroWhenTargetUnreachable) {
  const cf::ModelSpec model = cf::make_za(0.99);
  ca::CacProblem p = paper_problem();
  p.capacity_cells_per_frame = 510.0;  // barely above one source's mean
  p.buffer_cells = 10.0;
  p.log10_target_clr = -12.0;
  const ca::CacResult result = ca::admissible_connections_br(model, p);
  EXPECT_EQ(result.admissible, 0u);
}

TEST(CacBr, ZeroWhenCapacityBelowASingleMean) {
  // C < mu makes even one connection unstable: n_max = floor(C/mu) = 0.
  // The reported BOP is 0.0 -- log10 of probability ~1 at the clamped
  // certainty end of the scale, NOT +inf.
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacProblem p = paper_problem();
  p.capacity_cells_per_frame = 400.0;  // below the common mean of 500
  const ca::CacResult result = ca::admissible_connections_br(model, p);
  EXPECT_EQ(result.admissible, 0u);
  EXPECT_EQ(result.log10_bop_at_max, 0.0);
}

TEST(CacBr, SingleConnectionInfeasibilityReportsCertaintyBop) {
  // One connection fits the link's stability bound (n_max = 1) but misses
  // the QOS target: admissible 0, and the BOP report stays at the 0.0
  // certainty clamp rather than the last probed value.
  const cf::ModelSpec model = cf::make_za(0.99);
  ca::CacProblem p = paper_problem();
  p.capacity_cells_per_frame = 510.0;  // barely above one source's mean
  p.buffer_cells = 10.0;
  p.log10_target_clr = -12.0;
  const ca::CacResult result = ca::admissible_connections_br(model, p);
  EXPECT_EQ(result.admissible, 0u);
  EXPECT_EQ(result.log10_bop_at_max, 0.0);
}

TEST(CacEb, WorksForMarkovThrowsForLrd) {
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.9, 1);
  const ca::CacResult eb = ca::admissible_connections_eb(dar, paper_problem());
  EXPECT_GT(eb.admissible, 0u);
  // LRD model: no finite asymptotic variance rate -> no effective bandwidth.
  const cf::ModelSpec l = cf::make_l();
  EXPECT_THROW(ca::admissible_connections_eb(l, paper_problem()),
               cu::NumericalError);
}

TEST(CacEbVsBr, EbIsMoreConservativeAtLargeBuffers) {
  // EB ignores the buffer's full correlation discount; for a strongly
  // correlated SRD source it should admit no more than B-R.
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.975, 1);
  const auto br = ca::admissible_connections_br(dar, paper_problem());
  const auto eb = ca::admissible_connections_eb(dar, paper_problem());
  EXPECT_LE(eb.admissible, br.admissible + 1);
}

TEST(CacEbVsBr, EbNotMoreGenerousOnAGeometricAcf) {
  // On a plain geometric (AR(1)) ACF both rules exist; EB's straight-line
  // bandwidth must not out-admit the exact B-R inversion by more than the
  // integer-rounding slack.
  const cf::ModelSpec ar1 = cf::make_ar1(0.8);
  const auto br = ca::admissible_connections_br(ar1, paper_problem());
  const auto eb = ca::admissible_connections_eb(ar1, paper_problem());
  EXPECT_GT(eb.admissible, 0u);
  EXPECT_LE(eb.admissible, br.admissible + 1);
}

TEST(CacEb, RejectsAsymptoticLrdModels) {
  // F-ARIMA is only asymptotically LRD (the power law holds in the tail,
  // not at small lags), but the variance-rate sum still diverges: the EB
  // rule must refuse it the same way it refuses the exact-LRD family.
  const cf::ModelSpec farima = cf::make_farima(0.3);
  EXPECT_THROW(ca::admissible_connections_eb(farima, paper_problem()),
               cu::NumericalError);
}
