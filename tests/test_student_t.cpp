// Unit tests for Student-t confidence machinery.

#include "cts/util/student_t.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cu = cts::util;

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(cu::log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(cu::log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(cu::log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(cu::log_gamma(0.5), std::log(std::sqrt(cu::kPi)), 1e-10);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(cu::log_gamma(0.0), cu::InvalidArgument);
  EXPECT_THROW(cu::log_gamma(-1.0), cu::InvalidArgument);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(cu::regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cu::regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCase) {
  // I_x(1,1) = x.
  for (const double x : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_NEAR(cu::regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, SymmetryRelation) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = cu::regularized_incomplete_beta(2.5, 4.0, 0.3);
  const double w = cu::regularized_incomplete_beta(4.0, 2.5, 0.7);
  EXPECT_NEAR(v, 1.0 - w, 1e-12);
}

TEST(StudentTCdf, SymmetricAroundZero) {
  EXPECT_DOUBLE_EQ(cu::student_t_cdf(0.0, 5.0), 0.5);
  EXPECT_NEAR(cu::student_t_cdf(1.3, 7.0) + cu::student_t_cdf(-1.3, 7.0),
              1.0, 1e-12);
}

TEST(StudentTCdf, ApproachesNormalForLargeDof) {
  for (const double t : {-2.0, -1.0, 0.5, 1.96}) {
    EXPECT_NEAR(cu::student_t_cdf(t, 1e6), cu::normal_cdf(t), 1e-4);
  }
}

TEST(StudentTCritical, MatchesStandardTables) {
  // Two-sided 95% critical values.
  EXPECT_NEAR(cu::student_t_critical(0.95, 1.0), 12.706, 0.01);
  EXPECT_NEAR(cu::student_t_critical(0.95, 5.0), 2.571, 0.005);
  EXPECT_NEAR(cu::student_t_critical(0.95, 10.0), 2.228, 0.005);
  EXPECT_NEAR(cu::student_t_critical(0.95, 30.0), 2.042, 0.005);
  // Two-sided 99%.
  EXPECT_NEAR(cu::student_t_critical(0.99, 10.0), 3.169, 0.005);
}

TEST(StudentTCritical, RejectsBadInput) {
  EXPECT_THROW(cu::student_t_critical(0.0, 5.0), cu::InvalidArgument);
  EXPECT_THROW(cu::student_t_critical(1.0, 5.0), cu::InvalidArgument);
  EXPECT_THROW(cu::student_t_critical(0.95, 0.0), cu::InvalidArgument);
}

TEST(ConfidenceHalfWidth, KnownCase) {
  // n = 11, dof = 10, t* = 2.228: hw = 2.228 * s / sqrt(11).
  const double hw = cu::confidence_half_width(2.0, 11, 0.95);
  EXPECT_NEAR(hw, 2.228 * 2.0 / std::sqrt(11.0), 0.01);
}

TEST(ConfidenceHalfWidth, ZeroForTinySamples) {
  EXPECT_DOUBLE_EQ(cu::confidence_half_width(5.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cu::confidence_half_width(5.0, 1), 0.0);
}
