// Unit tests for the multithreaded replication harness.

#include "cts/sim/replication.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

cm::ReplicationConfig small_config() {
  cm::ReplicationConfig config;
  config.replications = 4;
  config.frames_per_replication = 4000;
  config.warmup_frames = 200;
  config.n_sources = 10;
  config.capacity_cells = 10 * 520.0;
  config.buffer_sizes_cells = {0.0, 500.0};
  config.bop_thresholds_cells = {200.0};
  return config;
}

}  // namespace

TEST(Replication, ResultsIndependentOfThreadCount) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  config.threads = 1;
  const cm::ReplicationResult serial = cm::run_replicated(model, config);
  config.threads = 4;
  const cm::ReplicationResult parallel = cm::run_replicated(model, config);
  ASSERT_EQ(serial.clr.size(), parallel.clr.size());
  for (std::size_t i = 0; i < serial.clr.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.clr[i].pooled_clr, parallel.clr[i].pooled_clr);
    EXPECT_DOUBLE_EQ(serial.clr[i].clr.mean, parallel.clr[i].clr.mean);
  }
  EXPECT_DOUBLE_EQ(serial.total_arrived_cells, parallel.total_arrived_cells);
}

TEST(Replication, MasterSeedChangesResults) {
  const cf::ModelSpec model = cf::make_ar1(0.8);
  cm::ReplicationConfig config = small_config();
  const cm::ReplicationResult a = cm::run_replicated(model, config);
  config.master_seed = 999;
  const cm::ReplicationResult b = cm::run_replicated(model, config);
  EXPECT_NE(a.total_arrived_cells, b.total_arrived_cells);
}

TEST(Replication, TalliesAreConsistent) {
  const cf::ModelSpec model = cf::make_ar1(0.9);
  const cm::ReplicationConfig config = small_config();
  const cm::ReplicationResult result = cm::run_replicated(model, config);
  EXPECT_EQ(result.total_frames,
            config.replications * config.frames_per_replication);
  // Zero buffer loses at least as much as the 500-cell buffer.
  EXPECT_GE(result.clr[0].pooled_clr, result.clr[1].pooled_clr);
  // Pooled and replication-mean estimates agree (equal-sized reps).
  for (const auto& est : result.clr) {
    EXPECT_NEAR(est.pooled_clr, est.clr.mean,
                1e-9 + 0.01 * std::max(est.pooled_clr, est.clr.mean));
  }
  // Mean arrived cells per frame ~ N * mu.
  EXPECT_NEAR(result.total_arrived_cells /
                  static_cast<double>(result.total_frames),
              10 * 500.0, 25.0);
}

TEST(Replication, ConfidenceIntervalsArePopulated) {
  const cf::ModelSpec model = cf::make_ar1(0.9);
  const cm::ReplicationResult result =
      cm::run_replicated(model, small_config());
  EXPECT_EQ(result.clr[0].clr.samples, 4u);
  EXPECT_GT(result.clr[0].clr.half_width, 0.0);
  EXPECT_GT(result.bop[0].bop.mean, 0.0);
}

TEST(Replication, RejectsBadConfig) {
  const cf::ModelSpec model = cf::make_ar1(0.5);
  cm::ReplicationConfig config = small_config();
  config.replications = 0;
  EXPECT_THROW(cm::run_replicated(model, config), cu::InvalidArgument);
  config = small_config();
  config.n_sources = 0;
  EXPECT_THROW(cm::run_replicated(model, config), cu::InvalidArgument);
}

TEST(ReplicationScales, PresetsAndEnvOverrides) {
  EXPECT_EQ(cm::paper_scale().replications, 60u);
  EXPECT_EQ(cm::paper_scale().frames_per_replication, 500000u);
  EXPECT_LT(cm::default_scale().replications,
            cm::paper_scale().replications);

  ::setenv("REPRO_REPS", "3", 1);
  ::setenv("REPRO_FRAMES", "777", 1);
  const cm::ReplicationConfig config =
      cm::apply_env_overrides(cm::default_scale());
  EXPECT_EQ(config.replications, 3u);
  EXPECT_EQ(config.frames_per_replication, 777u);
  ::unsetenv("REPRO_REPS");
  ::unsetenv("REPRO_FRAMES");

  ::setenv("REPRO_FULL", "1", 1);
  const cm::ReplicationConfig full =
      cm::apply_env_overrides(cm::default_scale());
  EXPECT_EQ(full.replications, 60u);
  ::unsetenv("REPRO_FULL");
}
