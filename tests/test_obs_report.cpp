#include "cts/obs/run_report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "cts/obs/json.hpp"

namespace obs = cts::obs;

namespace {

TEST(JsonWriter, EmitsValidNestedDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("name").value("a \"quoted\" value\n");
  w.key("count").value(std::uint64_t{7});
  w.key("pi").value(3.25);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("list").begin_array().value(std::int64_t{1}).value(2.0).end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  std::string error;
  EXPECT_TRUE(obs::json_parse_check(os.str(), &error)) << error << "\n"
                                                       << os.str();
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonParseCheck, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::json_parse_check("", &error));
  EXPECT_FALSE(obs::json_parse_check("{", &error));
  EXPECT_FALSE(obs::json_parse_check("{\"a\":1,}", &error));
  EXPECT_FALSE(obs::json_parse_check("[1 2]", &error));
  EXPECT_FALSE(obs::json_parse_check("{\"a\":01}", &error));
  EXPECT_FALSE(obs::json_parse_check("\"unterminated", &error));
  EXPECT_FALSE(obs::json_parse_check("{} trailing", &error));
  EXPECT_TRUE(obs::json_parse_check(" {\"a\": [1, 2.5e-3, null]} ", &error))
      << error;
}

TEST(RunReport, CombinesConfigEchoWithRegistryMetrics) {
  obs::MetricsRegistry reg;
  reg.add("sim.frames_total", 1234);
  reg.gauge("sim.threads", 4.0);
  reg.observe("sim.replication.wall_ms", 12.0, {10.0, 100.0});

  obs::RunReport report;
  report.set("run_id", "fig8_sim_clr");
  report.set("master_seed", std::uint64_t{0x5EEDC0DEULL});
  report.set("replications", std::int64_t{12});
  report.set("repro_full", false);
  report.set("utilisation", 0.9);

  std::ostringstream os;
  report.write_json(os, reg);
  const std::string text = os.str();
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("\"config\""), std::string::npos);
  EXPECT_NE(text.find("\"run_id\":\"fig8_sim_clr\""), std::string::npos);
  EXPECT_NE(text.find("\"master_seed\":" + std::to_string(0x5EEDC0DEULL)),
            std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"sim.frames_total\":1234"), std::string::npos);
  EXPECT_NE(text.find("\"sim.replication.wall_ms\""), std::string::npos);
}

TEST(RunReport, SetOverwritesExistingKeyInPlace) {
  obs::MetricsRegistry reg;
  obs::RunReport report;
  report.set("scale", "default");
  report.set("scale", "paper");
  std::ostringstream os;
  report.write_json(os, reg);
  const std::string text = os.str();
  EXPECT_EQ(text.find("default"), std::string::npos);
  EXPECT_NE(text.find("\"scale\":\"paper\""), std::string::npos);
}

TEST(RunReport, WriteProducesAParsableFile) {
  obs::MetricsRegistry reg;
  reg.add("x", 1);
  obs::RunReport report;
  report.set("run_id", "unit_test");
  const std::string path = ::testing::TempDir() + "/cts_report_test.json";
  ASSERT_TRUE(report.write(path, reg));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::json_parse_check(buffer.str(), &error)) << error;
}

}  // namespace
