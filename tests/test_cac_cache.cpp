// Unit tests for the admission-control memoization cache: bit-identity
// with the direct library entry points, warm-started CTS scans, opt-in
// interpolation, and the hit/miss accounting the daemon's stats endpoint
// exposes.

#include "cts/atm/cac_cache.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cts/atm/cac.hpp"
#include "cts/core/simd.hpp"
#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

ca::CacProblem paper_problem() {
  ca::CacProblem p;
  p.capacity_cells_per_frame = 16140.0;  // 30 x 538
  p.buffer_cells = 4035.0;               // 10 ms at that drain rate
  p.log10_target_clr = -6.0;
  return p;
}

}  // namespace

TEST(CacCache, RepeatQueryIsAHitAndBitIdentical) {
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacCache cache;
  const double first = cache.log10_bop(model, paper_problem(), 20);
  ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.rate_misses, 1u);
  EXPECT_EQ(stats.rate_hits, 0u);
  EXPECT_EQ(stats.rate_entries, 1u);

  const double second = cache.log10_bop(model, paper_problem(), 20);
  EXPECT_EQ(first, second);  // bit-identical, not merely close
  stats = cache.stats();
  EXPECT_EQ(stats.rate_misses, 1u);
  EXPECT_EQ(stats.rate_hits, 1u);
  EXPECT_EQ(stats.rate_entries, 1u);
}

TEST(CacCache, InfeasibleNReportsCertaintyAndIsNotCached) {
  // N = 40 makes c = 16140/40 = 403.5 <= mean 500: the queue is unstable,
  // overflow has probability ~1, and the log10 scale reports 0.0 (NOT
  // +inf -- log10 is clamped at certainty).  Such points are not cached.
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacCache cache;
  EXPECT_EQ(cache.log10_bop(model, paper_problem(), 40), 0.0);
  const ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.rate_hits, 0u);
  EXPECT_EQ(stats.rate_misses, 0u);
  EXPECT_EQ(stats.rate_entries, 0u);
}

TEST(CacCache, WarmStartedScansAreBitIdenticalToColdScans) {
  // Ascending buffers at a fixed (model, c): from the second query on, the
  // scan warm-starts at the cached m* of the previous grid point.  CTS
  // monotonicity in b makes that bit-identical to a cold scan.
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacCache warm;
  for (const double buffer :
       {500.0, 1000.0, 2000.0, 4035.0, 8000.0, 16000.0, 32000.0}) {
    ca::CacProblem p = paper_problem();
    p.buffer_cells = buffer;
    const double warmed = warm.log10_bop(model, p, 20);
    ca::CacCache cold;
    EXPECT_EQ(warmed, cold.log10_bop(model, p, 20)) << "buffer=" << buffer;
  }
  const ca::CacCache::Stats stats = warm.stats();
  EXPECT_EQ(stats.rate_misses, 7u);
  EXPECT_GE(stats.warm_starts, 1u);
  EXPECT_EQ(stats.rate_entries, 7u);
}

TEST(CacCache, WarmStartedScansAreBitIdenticalAcrossSimdKinds) {
  // The daemon's cached scans run through the dispatched kernels; answers
  // must not depend on the host's instruction set (or on the CTS_SIMD
  // override a worker happens to run with).
  namespace cds = cts::core::simd;
  struct Guard {
    ~Guard() { cds::clear_force(); }
  } guard;
  const cf::ModelSpec model = cf::make_za(0.9);
  std::vector<double> reference;
  cds::force(cds::Kind::kScalar);
  {
    ca::CacCache cache;
    for (const double buffer : {500.0, 2000.0, 8000.0, 32000.0}) {
      ca::CacProblem p = paper_problem();
      p.buffer_cells = buffer;
      reference.push_back(cache.log10_bop(model, p, 20));
    }
  }
  cds::force(cds::best_supported());
  ca::CacCache cache;
  std::size_t i = 0;
  for (const double buffer : {500.0, 2000.0, 8000.0, 32000.0}) {
    ca::CacProblem p = paper_problem();
    p.buffer_cells = buffer;
    EXPECT_EQ(cache.log10_bop(model, p, 20), reference[i++])
        << "buffer=" << buffer;
  }
}

TEST(CacCache, AdmissibleBrMatchesDirectCallAndReusesFinalBop) {
  for (const cf::ModelSpec& model :
       {cf::make_za(0.9), cf::make_dar_matched_to_za(0.9, 1),
        cf::make_ar1(0.8)}) {
    ca::CacCache cache;
    const ca::CacResult cached = cache.admissible_br(model, paper_problem());
    const ca::CacResult direct =
        ca::admissible_connections_br(model, paper_problem());
    EXPECT_EQ(cached.admissible, direct.admissible) << model.name;
    EXPECT_EQ(cached.log10_bop_at_max, direct.log10_bop_at_max) << model.name;

    // The binary search's probes all hit distinct (c, b) points; only the
    // final BOP report re-reads one -- exactly one guaranteed cache hit,
    // never a re-scan.
    const ca::CacCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.rate_hits, 1u) << model.name;
    EXPECT_GE(stats.rate_misses, 1u) << model.name;
  }
}

TEST(CacCache, AdmissibleEbMatchesDirectCallAndMemoizesVarianceRate) {
  const cf::ModelSpec model = cf::make_dar_matched_to_za(0.9, 1);
  ca::CacCache cache;
  const ca::CacResult first = cache.admissible_eb(model, paper_problem());
  const ca::CacResult direct =
      ca::admissible_connections_eb(model, paper_problem());
  EXPECT_EQ(first.admissible, direct.admissible);
  EXPECT_EQ(first.log10_bop_at_max, direct.log10_bop_at_max);
  ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.eb_misses, 1u);
  EXPECT_EQ(stats.eb_hits, 0u);

  const ca::CacResult second = cache.admissible_eb(model, paper_problem());
  EXPECT_EQ(second.admissible, first.admissible);
  EXPECT_EQ(second.log10_bop_at_max, first.log10_bop_at_max);
  stats = cache.stats();
  EXPECT_EQ(stats.eb_misses, 1u);  // the summation ran once
  EXPECT_EQ(stats.eb_hits, 1u);
}

TEST(CacCache, CachedLrdFailureRethrowsTheSameError) {
  // An LRD model has no finite variance rate; the failure itself is
  // memoized, so a re-query throws immediately with the identical message
  // instead of re-running the divergent summation.
  const cf::ModelSpec model = cf::make_l();
  ca::CacCache cache;
  std::string first_error;
  try {
    cache.admissible_eb(model, paper_problem());
    FAIL() << "expected NumericalError";
  } catch (const cu::NumericalError& e) {
    first_error = e.what();
  }
  EXPECT_FALSE(first_error.empty());
  try {
    cache.admissible_eb(model, paper_problem());
    FAIL() << "expected NumericalError";
  } catch (const cu::NumericalError& e) {
    EXPECT_EQ(std::string(e.what()), first_error);
  }
  const ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.eb_misses, 1u);
  EXPECT_EQ(stats.eb_hits, 1u);
}

TEST(CacCache, InterpolationBracketsCachedGridPoints) {
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacProblem below = paper_problem();
  below.buffer_cells = 2000.0;
  ca::CacProblem above = paper_problem();
  above.buffer_cells = 4000.0;
  ca::CacCache cache;
  const double y0 = cache.log10_bop(model, below, 20);
  const double y1 = cache.log10_bop(model, above, 20);
  ASSERT_LT(y1, y0);  // BOP improves with buffer

  // Mid-grid probe with interpolation allowed: served from the bracket,
  // no new scan, and the value sits between the bracket's endpoints.
  ca::CacProblem mid = paper_problem();
  mid.buffer_cells = 3000.0;
  const double interpolated = cache.log10_bop_interpolated(model, mid, 20);
  EXPECT_LE(interpolated, y0);
  EXPECT_GE(interpolated, y1);
  ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.interpolations, 1u);
  EXPECT_EQ(stats.rate_misses, 2u);   // only the two priming scans
  EXPECT_EQ(stats.rate_entries, 2u);  // the probe cached nothing

  // An exactly-cached point is served exactly, never interpolated.
  const double exact = cache.log10_bop_interpolated(model, below, 20);
  EXPECT_EQ(exact, y0);
  stats = cache.stats();
  EXPECT_EQ(stats.interpolations, 1u);
  EXPECT_EQ(stats.rate_hits, 1u);
}

TEST(CacCache, InterpolationFallsBackToExactWithoutABracket) {
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacCache cache;
  const double value = cache.log10_bop_interpolated(model, paper_problem(), 20);
  ca::CacCache no_interp;
  EXPECT_EQ(value, no_interp.log10_bop(model, paper_problem(), 20));
  const ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.interpolations, 0u);
  EXPECT_EQ(stats.rate_misses, 1u);  // the fallback scan, now cached
  EXPECT_EQ(stats.rate_entries, 1u);
}

TEST(CacCache, ClearDropsEntriesAndKeepsMonotoneCounters) {
  const cf::ModelSpec model = cf::make_za(0.9);
  ca::CacCache cache;
  (void)cache.log10_bop(model, paper_problem(), 20);
  EXPECT_EQ(cache.stats().rate_entries, 1u);
  cache.clear();
  ca::CacCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.rate_entries, 0u);
  EXPECT_EQ(stats.rate_misses, 1u);  // history survives the flush
  (void)cache.log10_bop(model, paper_problem(), 20);
  stats = cache.stats();
  EXPECT_EQ(stats.rate_misses, 2u);  // cleared means re-scan, not hit
  EXPECT_EQ(stats.rate_hits, 0u);
}
