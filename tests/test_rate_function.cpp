// Unit tests for the rate function I(c,b) and the Critical Time Scale.

#include "cts/core/rate_function.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

namespace {

cc::RateFunction white_rate(double mean, double sigma2, double c) {
  return cc::RateFunction(std::make_shared<cc::WhiteAcf>(), mean, sigma2, c);
}

}  // namespace

TEST(RateFunction, RejectsUnstableBandwidth) {
  EXPECT_THROW(white_rate(500.0, 5000.0, 500.0), cu::InvalidArgument);
  EXPECT_THROW(white_rate(500.0, 5000.0, 499.0), cu::InvalidArgument);
}

TEST(RateFunction, ZeroBufferCtsIsOne) {
  // The paper: m*_0 = 1 -- correlations are irrelevant at zero buffer.
  for (const auto& acf : {std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::WhiteAcf>()),
                          std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::GeometricAcf>(0.95)),
                          std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::ExactLrdAcf>(0.9, 0.9))}) {
    const cc::RateFunction rate(acf, 500.0, 5000.0, 526.0);
    EXPECT_EQ(rate.evaluate(0.0).critical_m, 1u) << acf->name();
  }
}

TEST(RateFunction, ZeroBufferRateIsMarginalChernoff) {
  // At b = 0 and m = 1: I = (c - mu)^2 / (2 sigma^2), the Gaussian
  // Chernoff exponent of a single frame.
  const cc::RateFunction rate = white_rate(500.0, 5000.0, 538.0);
  const cc::RateResult r = rate.evaluate(0.0);
  EXPECT_NEAR(r.rate, 38.0 * 38.0 / (2.0 * 5000.0), 1e-12);
}

TEST(RateFunction, WhiteNoiseCtsScalesAsBufferOverDrift) {
  // For V(m) = sigma^2 m the continuous minimiser is m = b/(c - mu).
  const cc::RateFunction rate = white_rate(500.0, 5000.0, 538.0);
  for (const double b : {38.0, 380.0, 3800.0}) {
    const auto m = rate.evaluate(b).critical_m;
    const double predicted = b / 38.0;
    EXPECT_NEAR(static_cast<double>(m), predicted,
                std::max(1.0, 0.02 * predicted))
        << "b=" << b;
  }
}

TEST(RateFunction, WhiteNoiseRateClosedForm) {
  // With the continuous minimiser, I = 2 b (c-mu) / (2 sigma^2) ... derive:
  // f(m) = (b + dm)^2/(2 s m); at m = b/d: (2b)^2/(2 s b/d) = 2 b d / s.
  const double d = 38.0;
  const double s = 5000.0;
  const cc::RateFunction rate = white_rate(500.0, s, 500.0 + d);
  const double b = 3800.0;  // large so the integer minimiser is accurate
  EXPECT_NEAR(rate.evaluate(b).rate, 2.0 * b * d / s,
              0.001 * 2.0 * b * d / s);
}

TEST(RateFunction, CtsIsNonDecreasingInBuffer) {
  for (const auto& acf : {std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::GeometricAcf>(0.975)),
                          std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::ExactLrdAcf>(0.9, 0.9))}) {
    const cc::RateFunction rate(acf, 500.0, 5000.0, 526.0);
    std::size_t prev = 0;
    for (double b = 0.0; b <= 2000.0; b += 100.0) {
      const auto m = rate.evaluate(b).critical_m;
      EXPECT_GE(m, prev) << acf->name() << " b=" << b;
      prev = m;
    }
  }
}

TEST(RateFunction, LrdCtsMatchesAppendixScaling) {
  // m* ~ H b / ((1-H)(c - mu)) for exact-LRD Gaussian sources.
  const double h = 0.9;
  const cc::RateFunction rate(std::make_shared<cc::ExactLrdAcf>(h, 0.9),
                              500.0, 5000.0, 538.0);
  const double b = 4000.0;
  const double predicted = cc::lrd_cts_slope(h, 500.0, 538.0) * b;
  const auto m = rate.evaluate(b).critical_m;
  EXPECT_NEAR(static_cast<double>(m), predicted, 0.06 * predicted);
}

TEST(RateFunction, StrongerShortCorrelationsGiveLargerCts) {
  // Fig. 4-b: higher a yields larger m* at the same buffer.
  const double b = 500.0;
  std::size_t prev = 0;
  for (const double a : {0.7, 0.9, 0.975}) {
    const cc::RateFunction rate(std::make_shared<cc::GeometricAcf>(a), 500.0,
                                5000.0, 526.0);
    const auto m = rate.evaluate(b).critical_m;
    EXPECT_GT(m, prev) << "a=" << a;
    prev = m;
  }
}

TEST(RateFunction, RateDecreasesWithCorrelation) {
  // More correlation -> larger V(m) -> smaller I -> higher loss.
  const double b = 500.0;
  const cc::RateFunction weak(std::make_shared<cc::GeometricAcf>(0.3), 500.0,
                              5000.0, 538.0);
  const cc::RateFunction strong(std::make_shared<cc::GeometricAcf>(0.95),
                                500.0, 5000.0, 538.0);
  EXPECT_GT(weak.evaluate(b).rate, strong.evaluate(b).rate);
}

TEST(RateFunction, RateIncreasesWithBuffer) {
  const cc::RateFunction rate(std::make_shared<cc::GeometricAcf>(0.9), 500.0,
                              5000.0, 538.0);
  double prev = -1.0;
  for (double b = 0.0; b <= 3000.0; b += 300.0) {
    const double i = rate.evaluate(b).rate;
    EXPECT_GT(i, prev) << "b=" << b;
    prev = i;
  }
}

TEST(RateFunction, HugeBufferThrowsInsteadOfUnclampedScan) {
  // Regression: the INITIAL horizon (the LRD scaling prediction) was never
  // validated against kMaxScan, and llround of a huge double is undefined
  // behaviour.  A buffer large enough that the guaranteed-coverage horizon
  // cannot fit in the scan bound must throw the same NumericalError the
  // improvement-extension path throws.
  const cc::RateFunction rate = white_rate(500.0, 5000.0, 501.0);
  EXPECT_THROW(rate.evaluate(1.0e7), cu::NumericalError);
  EXPECT_THROW(rate.evaluate(1.0e300), cu::NumericalError);  // llround UB
  // Just inside the bound still evaluates (horizon = 4 * 49 * b / drift).
  EXPECT_NO_THROW(rate.evaluate(50000.0));
}

TEST(RateFunction, WarmStartChainIsBitIdenticalToColdScan) {
  // m*_b is non-decreasing in b, so chaining each point's m* into the next
  // evaluation must reproduce the cold scan exactly (same contract the
  // CacCache and the curve sweeps rely on).
  for (const auto& acf : {std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::GeometricAcf>(0.975)),
                          std::shared_ptr<const cc::AcfModel>(
                              std::make_shared<cc::ExactLrdAcf>(0.9, 0.9))}) {
    const cc::RateFunction rate(acf, 500.0, 5000.0, 526.0);
    std::size_t hint = 1;
    for (double b = 0.0; b <= 3000.0; b += 50.0) {
      const cc::RateResult cold = rate.evaluate(b);
      const cc::RateResult warm = rate.evaluate(b, hint);
      EXPECT_EQ(warm.critical_m, cold.critical_m) << acf->name() << " b=" << b;
      EXPECT_EQ(warm.rate, cold.rate) << acf->name() << " b=" << b;
      hint = warm.critical_m;
    }
  }
}

TEST(RateFunction, RejectsNegativeBuffer) {
  const cc::RateFunction rate = white_rate(500.0, 5000.0, 538.0);
  EXPECT_THROW(rate.evaluate(-1.0), cu::InvalidArgument);
}

TEST(CtsSlopes, ClosedForms) {
  EXPECT_NEAR(cc::markov_cts_slope(500.0, 538.0), 1.0 / 38.0, 1e-15);
  EXPECT_NEAR(cc::lrd_cts_slope(0.9, 500.0, 538.0), 9.0 / 38.0, 1e-12);
  EXPECT_THROW(cc::markov_cts_slope(538.0, 500.0), cu::InvalidArgument);
  EXPECT_THROW(cc::lrd_cts_slope(1.0, 500.0, 538.0), cu::InvalidArgument);
}
