// Unit tests for the radix-2 FFT.

#include "cts/util/fft.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"
#include "cts/util/rng.hpp"

namespace cu = cts::util;

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  cu::fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  const int tone = 5;
  for (std::size_t t = 0; t < n; ++t) {
    data[t] = std::cos(2.0 * cu::kPi * tone * static_cast<double>(t) /
                       static_cast<double>(n));
  }
  cu::fft(data);
  // Real cosine: energy splits between bins +5 and n-5.
  EXPECT_NEAR(std::abs(data[tone]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - tone]), static_cast<double>(n) / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != static_cast<std::size_t>(tone) && k != n - tone) {
      EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, RoundTripRestoresSignal) {
  cu::Xoshiro256pp rng(3);
  std::vector<std::complex<double>> data(256);
  std::vector<std::complex<double>> original(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.uniform01(), rng.uniform01()};
    original[i] = data[i];
  }
  cu::fft(data);
  cu::ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  cu::Xoshiro256pp rng(11);
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {2.0 * rng.uniform01() - 1.0, 0.0};
    time_energy += std::norm(x);
  }
  cu::fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6, 0.0);
  EXPECT_THROW(cu::fft(data), cu::InvalidArgument);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(cu::next_pow2(1), 1u);
  EXPECT_EQ(cu::next_pow2(2), 2u);
  EXPECT_EQ(cu::next_pow2(3), 4u);
  EXPECT_EQ(cu::next_pow2(1000), 1024u);
}
