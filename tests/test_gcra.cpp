// Unit tests for GCRA policing and the dual leaky bucket.

#include "cts/atm/gcra.hpp"

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cu = cts::util;

TEST(Gcra, ConformingStreamPasses) {
  // Cells exactly at the contract rate conform with zero tolerance.
  ca::Gcra gcra(1.0, 0.0);  // 1 cell/second
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gcra.conforms(static_cast<double>(i))) << "cell " << i;
  }
}

TEST(Gcra, TooFastStreamIsPoliced) {
  // Cells at twice the rate: with zero tolerance, every second cell fails.
  ca::Gcra gcra(1.0, 0.0);
  int nonconforming = 0;
  for (int i = 0; i < 100; ++i) {
    if (!gcra.conforms(0.5 * static_cast<double>(i))) ++nonconforming;
  }
  EXPECT_NEAR(nonconforming, 50, 2);
}

TEST(Gcra, ToleranceAdmitsJitter) {
  // A stream at the contract rate but with +-0.3 s jitter: a LATE cell
  // pushes TAT to its own arrival + T, so the next early cell sits 0.6 s
  // ahead of schedule -- tau = 0.8 admits it, tau = 0.1 polices it.
  ca::Gcra loose(1.0, 0.8);
  ca::Gcra tight(1.0, 0.1);
  int loose_fail = 0;
  int tight_fail = 0;
  for (int i = 0; i < 200; ++i) {
    const double jitter = (i % 2 == 0) ? -0.3 : 0.3;
    const double t = static_cast<double>(i) + jitter;
    if (!loose.conforms(t)) ++loose_fail;
    if (!tight.conforms(t)) ++tight_fail;
  }
  EXPECT_EQ(loose_fail, 0);
  EXPECT_GT(tight_fail, 50);
}

TEST(Gcra, NonConformingCellsDoNotAdvanceState) {
  ca::Gcra gcra(1.0, 0.0);
  EXPECT_TRUE(gcra.conforms(0.0));
  // A burst of early cells all fail without pushing TAT further out...
  EXPECT_FALSE(gcra.conforms(0.1));
  EXPECT_FALSE(gcra.conforms(0.2));
  // ...so the next on-schedule cell still conforms.
  EXPECT_TRUE(gcra.conforms(1.0));
}

TEST(Gcra, ResetRestoresInitialState) {
  ca::Gcra gcra(10.0, 0.0);
  EXPECT_TRUE(gcra.conforms(0.0));
  EXPECT_FALSE(gcra.conforms(1.0));
  gcra.reset();
  EXPECT_TRUE(gcra.conforms(1.0));
}

TEST(Gcra, RejectsBadParameters) {
  EXPECT_THROW(ca::Gcra(0.0, 1.0), cu::InvalidArgument);
  EXPECT_THROW(ca::Gcra(1.0, -1.0), cu::InvalidArgument);
}

TEST(DualLeakyBucket, AdmitsContractBurstsOnly) {
  // PCR 10 c/s, SCR 2 c/s, BT sized for MBS = 5 cells.
  const double t_pcr = 0.1;
  const double t_scr = 0.5;
  const double bt = (5.0 - 1.0) * (t_scr - t_pcr);  // MBS = 5
  ca::DualLeakyBucket bucket(10.0, 0.0, 2.0, bt);
  EXPECT_NEAR(bucket.max_burst_size(), 5.0, 1e-9);

  // A 5-cell burst at peak rate conforms...
  int fails = 0;
  for (int i = 0; i < 5; ++i) {
    if (!bucket.conforms(0.1 * static_cast<double>(i))) ++fails;
  }
  EXPECT_EQ(fails, 0);
  // ...the 6th back-to-back cell does not.
  EXPECT_FALSE(bucket.conforms(0.5));
  // After idling one SCR period, service resumes.
  EXPECT_TRUE(bucket.conforms(5.0));
}

TEST(DualLeakyBucket, PeakRateEnforcedIndependently) {
  ca::DualLeakyBucket bucket(10.0, 0.0, 2.0, 10.0);
  EXPECT_TRUE(bucket.conforms(0.0));
  // Above PCR even with huge burst tolerance: policed.
  EXPECT_FALSE(bucket.conforms(0.05));
}

TEST(DualLeakyBucket, RejectsPcrBelowScr) {
  EXPECT_THROW(ca::DualLeakyBucket(1.0, 0.0, 2.0, 0.0), cu::InvalidArgument);
}
