// Unit tests for the fractal ON/OFF renewal process.

#include "cts/proc/on_off.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

cp::OnOffParams params(double alpha = 0.8, double a = 0.01) {
  cp::OnOffParams p;
  p.alpha = alpha;
  p.A = a;
  return p;
}

}  // namespace

TEST(OnOffParams, ValidatesRanges) {
  EXPECT_THROW(params(0.0).validate(), cu::InvalidArgument);
  EXPECT_THROW(params(1.0).validate(), cu::InvalidArgument);
  EXPECT_THROW(params(0.8, 0.0).validate(), cu::InvalidArgument);
  EXPECT_NO_THROW(params().validate());
}

TEST(OnOffParams, SurvivalIsContinuousAtCrossover) {
  const cp::OnOffParams p = params();
  const double eps = 1e-9;
  const double left = p.sojourn_survival(p.A - eps);
  const double right = p.sojourn_survival(p.A + eps);
  EXPECT_NEAR(left, right, 1e-6);
  // And matches the closed forms on each side.
  EXPECT_NEAR(p.sojourn_survival(p.A / 2),
              std::exp(-p.gamma() * 0.5), 1e-12);
  EXPECT_NEAR(p.sojourn_survival(2 * p.A),
              std::exp(-p.gamma()) * std::pow(0.5, p.gamma()), 1e-12);
}

TEST(OnOffParams, SurvivalBoundaries) {
  const cp::OnOffParams p = params();
  EXPECT_DOUBLE_EQ(p.sojourn_survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.sojourn_survival(-1.0), 1.0);
  EXPECT_LT(p.sojourn_survival(1000.0 * p.A), 1e-3);
}

TEST(OnOffParams, SampledSojournsMatchSurvival) {
  // Empirical survival at a few quantiles vs the closed form.
  const cp::OnOffParams p = params();
  cu::Xoshiro256pp rng(123);
  const int n = 200000;
  const double probes[] = {p.A / 2, p.A, 3 * p.A, 10 * p.A};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const double t = p.sample_sojourn(rng);
    ASSERT_GT(t, 0.0);
    for (int j = 0; j < 4; ++j) {
      if (t > probes[j]) ++counts[j];
    }
  }
  for (int j = 0; j < 4; ++j) {
    const double expected = p.sojourn_survival(probes[j]);
    const double observed = static_cast<double>(counts[j]) / n;
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected / n) + 1e-3)
        << "probe " << j;
  }
}

TEST(OnOffParams, SampledSojournMeanMatchesClosedForm) {
  const cp::OnOffParams p = params();
  cu::Xoshiro256pp rng(77);
  // gamma = 1.2: the mean converges slowly (infinite variance), so use a
  // large sample and a loose tolerance.
  const int n = 2000000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += p.sample_sojourn(rng);
  EXPECT_NEAR(sum / n, p.mean_sojourn(), 0.15 * p.mean_sojourn());
}

TEST(OnOffParams, EquilibriumResidualIsPositiveAndHeavy) {
  const cp::OnOffParams p = params();
  cu::Xoshiro256pp rng(5);
  double max_seen = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double t = p.sample_equilibrium_residual(rng);
    ASSERT_GT(t, 0.0);
    max_seen = std::max(max_seen, t);
  }
  // The equilibrium residual of a gamma<2 sojourn is very heavy-tailed;
  // 1e5 draws should produce excursions far above the mean sojourn.
  EXPECT_GT(max_seen, 20.0 * p.mean_sojourn());
}

TEST(FractalOnOff, OnTimeBounds) {
  cp::FractalOnOff source(params(), cu::Xoshiro256pp(9));
  for (int i = 0; i < 1000; ++i) {
    const double on = source.on_time_in(0.04);
    ASSERT_GE(on, 0.0);
    ASSERT_LE(on, 0.04 + 1e-12);
  }
}

TEST(FractalOnOff, EnsembleOnFractionIsHalf) {
  // ON and OFF sojourns are identically distributed, so the stationary ON
  // fraction is 1/2.  A SINGLE path does not show this in finite time: the
  // equilibrium residual has infinite mean (gamma < 2), so a few-percent
  // fraction of paths spend the whole horizon inside their initial
  // sojourn.  Average over an ensemble instead -- exactly why the paper
  // runs 60 replications.
  double on_total = 0.0;
  const int processes = 400;
  const int windows = 2000;
  const double dt = 0.04;
  for (int p = 0; p < processes; ++p) {
    cp::FractalOnOff source(params(),
                            cu::Xoshiro256pp(31 + static_cast<unsigned>(p)));
    for (int i = 0; i < windows; ++i) on_total += source.on_time_in(dt);
  }
  EXPECT_NEAR(on_total / (static_cast<double>(processes) * windows * dt),
              0.5, 0.03);
}

TEST(FractalOnOff, ZeroWindowConsumesNothing) {
  cp::FractalOnOff source(params(), cu::Xoshiro256pp(2));
  const bool was_on = source.is_on();
  EXPECT_DOUBLE_EQ(source.on_time_in(0.0), 0.0);
  EXPECT_EQ(source.is_on(), was_on);
}
