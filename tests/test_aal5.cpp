// Unit tests for AAL5 segmentation and reassembly.

#include "cts/atm/aal5.hpp"

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace ca = cts::atm;
namespace cu = cts::util;

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(ca::crc32_ieee(data, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(ca::crc32_ieee(nullptr, 0), 0x00000000u);
}

TEST(Aal5CellCount, TrailerAndPaddingAccounting) {
  // 8-byte trailer: payload 0 -> 1 cell; payload 40 -> 1 cell (40+8 = 48);
  // payload 41 -> 2 cells; payload 88 -> 2 cells; payload 89 -> 3 cells.
  EXPECT_EQ(ca::aal5_cells_for_payload(0), 1u);
  EXPECT_EQ(ca::aal5_cells_for_payload(40), 1u);
  EXPECT_EQ(ca::aal5_cells_for_payload(41), 2u);
  EXPECT_EQ(ca::aal5_cells_for_payload(88), 2u);
  EXPECT_EQ(ca::aal5_cells_for_payload(89), 3u);
}

TEST(Aal5, SegmentReassembleRoundTrip) {
  cu::Xoshiro256pp rng(7);
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{40}, std::size_t{41},
                                 std::size_t{48}, std::size_t{1000},
                                 std::size_t{65535}}) {
    std::vector<std::uint8_t> payload(size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng() & 0xFF);
    const std::vector<ca::Cell> cells = ca::aal5_segment(payload, 3, 77);
    EXPECT_EQ(cells.size(), ca::aal5_cells_for_payload(size));
    // Only the last cell carries the end-of-PDU marker.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ((cells[i].header.pt & 1) != 0, i + 1 == cells.size());
      EXPECT_EQ(cells[i].header.vci, 77);
    }
    const auto reassembled = ca::aal5_reassemble(cells);
    ASSERT_TRUE(reassembled.has_value()) << "size=" << size;
    EXPECT_EQ(*reassembled, payload) << "size=" << size;
  }
}

TEST(Aal5, DetectsPayloadCorruption) {
  std::vector<std::uint8_t> payload(100, 0xAB);
  std::vector<ca::Cell> cells = ca::aal5_segment(payload, 0, 1);
  cells[0].payload[10] ^= 0x01;
  EXPECT_FALSE(ca::aal5_reassemble(cells).has_value());
}

TEST(Aal5, DetectsMissingLastCell) {
  std::vector<std::uint8_t> payload(200, 0x5A);
  std::vector<ca::Cell> cells = ca::aal5_segment(payload, 0, 1);
  cells.pop_back();  // lose the end-of-PDU cell
  EXPECT_FALSE(ca::aal5_reassemble(cells).has_value());
}

TEST(Aal5, DetectsDroppedMiddleCell) {
  std::vector<std::uint8_t> payload(500, 0x33);
  std::vector<ca::Cell> cells = ca::aal5_segment(payload, 0, 1);
  cells.erase(cells.begin() + 2);  // simulate a lost cell
  EXPECT_FALSE(ca::aal5_reassemble(cells).has_value());
}

TEST(Aal5, RejectsOversizedPayload) {
  EXPECT_THROW(ca::aal5_segment(std::vector<std::uint8_t>(65536), 0, 1),
               cu::InvalidArgument);
}

TEST(Aal5, EmptyCellListIsInvalid) {
  EXPECT_FALSE(ca::aal5_reassemble({}).has_value());
}
