// Unit tests for CLP-aware partial buffer sharing.

#include "cts/atm/priority_buffer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/proc/ar1.hpp"
#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cf = cts::fit;
namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

class ConstantSource final : public cp::FrameSource {
 public:
  explicit ConstantSource(double value) : value_(value) {}
  double next_frame() override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::unique_ptr<cp::FrameSource> clone(std::uint64_t) const override {
    return std::make_unique<ConstantSource>(value_);
  }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

std::vector<std::unique_ptr<cp::FrameSource>> constant(double v) {
  std::vector<std::unique_ptr<cp::FrameSource>> out;
  out.push_back(std::make_unique<ConstantSource>(v));
  return out;
}

std::vector<std::unique_ptr<cp::FrameSource>> stochastic(int n, double phi,
                                                         std::uint64_t seed) {
  cp::Ar1Params p;
  p.phi = phi;
  p.mean = 500.0;
  p.variance = 5000.0;
  std::vector<std::unique_ptr<cp::FrameSource>> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(std::make_unique<cp::Ar1Source>(
        p, seed + static_cast<std::uint64_t>(i)));
  }
  return out;
}

}  // namespace

TEST(PrioritySharing, ValidatesConfig) {
  ca::PrioritySharingConfig config;
  config.threshold_cells = config.buffer_cells + 1.0;
  EXPECT_THROW(config.validate(), cu::InvalidArgument);
  config = ca::PrioritySharingConfig{};
  config.capacity_cells = 0.0;
  EXPECT_THROW(config.validate(), cu::InvalidArgument);
}

TEST(PrioritySharing, UnderloadLosesNothing) {
  auto high = constant(200.0);
  auto low = constant(200.0);
  ca::PrioritySharingConfig config;
  config.frames = 1000;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_cells = 100.0;
  config.threshold_cells = 50.0;
  const ca::PrioritySharingResult result =
      ca::run_partial_buffer_sharing(high, low, config);
  EXPECT_DOUBLE_EQ(result.high_lost, 0.0);
  EXPECT_DOUBLE_EQ(result.low_lost, 0.0);
  EXPECT_DOUBLE_EQ(result.high_arrived, 200.0 * 1000);
}

TEST(PrioritySharing, SteadyOverloadDropsLowFirst) {
  // high 400 + low 300 into capacity 500: the 200 cells/frame excess must
  // come out of the LOW class while high passes untouched.
  auto high = constant(400.0);
  auto low = constant(300.0);
  ca::PrioritySharingConfig config;
  config.frames = 1000;
  config.warmup_frames = 10;
  config.capacity_cells = 500.0;
  config.buffer_cells = 200.0;
  config.threshold_cells = 100.0;
  const ca::PrioritySharingResult result =
      ca::run_partial_buffer_sharing(high, low, config);
  EXPECT_DOUBLE_EQ(result.high_lost, 0.0);
  EXPECT_NEAR(result.low_clr(), 200.0 / 300.0, 0.01);
}

TEST(PrioritySharing, HighOverloadAloneLosesHigh) {
  auto high = constant(700.0);
  auto low = constant(0.0);
  ca::PrioritySharingConfig config;
  config.frames = 500;
  config.warmup_frames = 10;
  config.capacity_cells = 500.0;
  config.buffer_cells = 100.0;
  config.threshold_cells = 50.0;
  const ca::PrioritySharingResult result =
      ca::run_partial_buffer_sharing(high, low, config);
  EXPECT_NEAR(result.high_clr(), 200.0 / 700.0, 0.01);
}

TEST(PrioritySharing, MatchesSingleClassRecursionWhenThresholdEqualsBuffer) {
  // With S = B and all traffic in one class, the dynamics must equal the
  // plain fluid recursion: cross-check losses against the closed pattern
  // from test_fluid_mux (600/400 alternating, C=500, B=50 -> 50 lost per
  // burst frame).
  std::vector<std::unique_ptr<cp::FrameSource>> high;
  class Alternator final : public cp::FrameSource {
   public:
    double next_frame() override {
      flip_ = !flip_;
      return flip_ ? 600.0 : 400.0;
    }
    double mean() const override { return 500.0; }
    double variance() const override { return 10000.0; }
    std::unique_ptr<cp::FrameSource> clone(std::uint64_t) const override {
      return std::make_unique<Alternator>();
    }
    std::string name() const override { return "alternator"; }

   private:
    bool flip_ = false;
  };
  high.push_back(std::make_unique<Alternator>());
  auto low = constant(0.0);
  ca::PrioritySharingConfig config;
  config.frames = 1000;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_cells = 50.0;
  config.threshold_cells = 50.0;
  const ca::PrioritySharingResult result =
      ca::run_partial_buffer_sharing(high, low, config);
  EXPECT_NEAR(result.high_lost, 50.0 * 500, 100.0);
}

TEST(PrioritySharing, ThresholdTradesLowLossForHighProtection) {
  // Lowering S strictly protects the high class at the low class's expense.
  auto run_with_threshold = [&](double s) {
    auto high = stochastic(10, 0.9, 100);
    auto low = stochastic(10, 0.9, 900);
    ca::PrioritySharingConfig config;
    config.frames = 20000;
    config.warmup_frames = 200;
    config.capacity_cells = 20 * 515.0;
    config.buffer_cells = 4000.0;
    config.threshold_cells = s;
    return ca::run_partial_buffer_sharing(high, low, config);
  };
  const ca::PrioritySharingResult tight = run_with_threshold(500.0);
  const ca::PrioritySharingResult loose = run_with_threshold(4000.0);
  EXPECT_LE(tight.high_clr(), loose.high_clr());
  EXPECT_GE(tight.low_clr(), loose.low_clr());
  // And with S = B both classes see (roughly) the shared-buffer loss.
  EXPECT_GT(loose.low_clr(), 0.0);
}

TEST(PrioritySharing, ConservationPerClass) {
  auto high = stochastic(5, 0.8, 42);
  auto low = stochastic(5, 0.8, 77);
  ca::PrioritySharingConfig config;
  config.frames = 10000;
  config.warmup_frames = 0;
  config.capacity_cells = 10 * 505.0;
  config.buffer_cells = 1000.0;
  config.threshold_cells = 400.0;
  const ca::PrioritySharingResult result =
      ca::run_partial_buffer_sharing(high, low, config);
  EXPECT_GE(result.high_lost, 0.0);
  EXPECT_GE(result.low_lost, 0.0);
  EXPECT_LE(result.high_lost, result.high_arrived);
  EXPECT_LE(result.low_lost, result.low_arrived);
  // Low class suffers more under the shared threshold.
  EXPECT_GE(result.low_clr(), result.high_clr());
}
