// Property tests for the Critical Time Scale over the paper's model grid.
//
// These encode the paper's three structural claims about m*_b (finite,
// small at small buffers, non-decreasing in buffer) plus the headline
// comparisons of Fig. 4 as parameterised sweeps.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/rate_function.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/sim/curves.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cm = cts::sim;

namespace {

/// Fig. 4 geometry: c = 526, mu = 500, N = 100.
cm::MuxGeometry fig4_geometry() {
  cm::MuxGeometry g;
  g.n_sources = 100;
  g.bandwidth_per_source = 526.0;
  g.Ts = 0.04;
  return g;
}

}  // namespace

class CtsModelPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  cf::ModelSpec model() const {
    const std::string name = GetParam();
    if (name == "V^0.67") return cf::make_vv(0.67);
    if (name == "V^1") return cf::make_vv(1.0);
    if (name == "V^1.5") return cf::make_vv(1.5);
    if (name == "Z^0.7") return cf::make_za(0.7);
    if (name == "Z^0.9") return cf::make_za(0.9);
    if (name == "Z^0.975") return cf::make_za(0.975);
    if (name == "Z^0.99") return cf::make_za(0.99);
    if (name == "L") return cf::make_l();
    if (name == "DAR1") return cf::make_dar_matched_to_za(0.975, 1);
    if (name == "DAR3") return cf::make_dar_matched_to_za(0.975, 3);
    if (name == "white") return cf::make_white();
    return cf::make_ar1(0.9);
  }
};

TEST_P(CtsModelPropertyTest, CtsIsFiniteSmallAtSmallBufferAndMonotone) {
  const cf::ModelSpec spec = model();
  const cm::MuxGeometry g = fig4_geometry();
  cc::RateFunction rate(spec.acf, spec.mean, spec.variance,
                        g.bandwidth_per_source);
  // m*_0 = 1 always.
  EXPECT_EQ(rate.evaluate(0.0).critical_m, 1u) << spec.name;

  std::size_t prev = 0;
  for (const double ms : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0}) {
    const double b =
        g.buffer_ms_to_cells(ms) / static_cast<double>(g.n_sources);
    const auto m = rate.evaluate(b).critical_m;
    // Finite and sane: far below the scan cap.
    EXPECT_LT(m, 100000u) << spec.name << " at " << ms << " ms";
    // Non-decreasing in buffer.
    EXPECT_GE(m, prev) << spec.name << " at " << ms << " ms";
    prev = m;
  }

  // Small buffer -> small CTS: at 0.5 ms the CTS is at most a few dozen
  // frame lags even for the strongest correlations in the zoo.
  const double b_small =
      g.buffer_ms_to_cells(0.5) / static_cast<double>(g.n_sources);
  EXPECT_LE(rate.evaluate(b_small).critical_m, 64u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(PaperModelGrid, CtsModelPropertyTest,
                         ::testing::Values("V^0.67", "V^1", "V^1.5", "Z^0.7",
                                           "Z^0.9", "Z^0.975", "Z^0.99", "L",
                                           "DAR1", "DAR3", "white", "ar1"));

TEST(CtsComparisons, VvFamilyHasNearlyIdenticalCts) {
  // Fig. 4-a: the three V^v CTS curves almost coincide at small buffers.
  const cm::MuxGeometry g = fig4_geometry();
  const std::vector<double> grid = {0.5, 1.0, 2.0, 4.0};
  const cm::AnalyticCurve a = cm::cts_curve(cf::make_vv(0.67), g, grid);
  const cm::AnalyticCurve b = cm::cts_curve(cf::make_vv(1.5), g, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double ma = static_cast<double>(a.critical_m[i]);
    const double mb = static_cast<double>(b.critical_m[i]);
    EXPECT_LE(std::abs(ma - mb), 0.25 * std::max(ma, mb) + 2.0)
        << "B = " << grid[i] << " ms";
  }
}

TEST(CtsComparisons, ZaFamilySpreadsWithA) {
  // Fig. 4-b: already at B = 2 ms the CTS difference across a is large
  // (the paper quotes ~15 lags).
  const cm::MuxGeometry g = fig4_geometry();
  const std::vector<double> grid = {2.0};
  const auto m_07 = cm::cts_curve(cf::make_za(0.7), g, grid).critical_m[0];
  const auto m_99 = cm::cts_curve(cf::make_za(0.99), g, grid).critical_m[0];
  EXPECT_GE(m_99, m_07 + 8);
}

TEST(CtsComparisons, StrongerShortTermCorrelationsLargerCts) {
  const cm::MuxGeometry g = fig4_geometry();
  const std::vector<double> grid = {4.0};
  std::size_t prev = 0;
  for (const double a : {0.7, 0.9, 0.975, 0.99}) {
    const auto m = cm::cts_curve(cf::make_za(a), g, grid).critical_m[0];
    EXPECT_GE(m, prev) << "a=" << a;
    prev = m;
  }
}

TEST(CtsComparisons, PracticalBufferCtsIsTinyVsLrdOnset) {
  // Section 6.2's closing argument: at a practical buffer (~1 frame of
  // delay) the CTS is tens of lags, while LRD behaviour lives at hundreds+.
  const cm::MuxGeometry g = fig4_geometry();
  const double b =
      g.buffer_ms_to_cells(30.0) / static_cast<double>(g.n_sources);
  const cf::ModelSpec z = cf::make_za(0.9);
  cc::RateFunction rate(z.acf, z.mean, z.variance, g.bandwidth_per_source);
  EXPECT_LT(rate.evaluate(b).critical_m, 400u);
}
