// Analytic hot-path bench: dense Bahadur-Rao buffer sweeps through the
// CTS scan, cold-scalar vs warm-started-scalar vs warm-started-dispatched
// (the SIMD kernel the host actually selects, or the CTS_SIMD override).
//
// Three passes answer the same buffer grid per model and must agree
// bit-for-bit -- the warm-start hint can never skip the minimiser (m*_b is
// non-decreasing in b) and the dispatched kernels are byte-identical to
// the scalar reference by contract (core/simd.hpp).  The bench enforces
// both identities and exits non-zero on any divergence, so the committed
// BENCH_*.json baselines track a speedup that is provably a pure
// optimisation.  The --csv mirror carries values only (no timings): the
// forced-scalar CI leg re-runs it under CTS_SIMD=scalar and diffs the two
// files byte-for-byte.

#include <ctime>
#include <cstdio>

#include "bench_common.hpp"
#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/simd.hpp"
#include "cts/obs/metrics.hpp"

namespace cc = cts::core;
namespace cds = cts::core::simd;
namespace cu = cts::util;
namespace obs = cts::obs;

namespace {

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct SweepResult {
  std::vector<std::size_t> critical_m;
  std::vector<double> log10_bop;
  std::vector<double> rate;
  double seconds = 0.0;
};

enum class Pass { kCold, kWarm };

/// `sweeps` repeats of one full grid sweep; per-point results are recorded
/// on the first repeat only (later repeats are timing ballast).
SweepResult run_pass(const cc::RateFunction& rate,
                     const std::vector<double>& buffers_per_source,
                     std::size_t n_sources, Pass pass, long long sweeps) {
  SweepResult out;
  out.critical_m.reserve(buffers_per_source.size());
  out.log10_bop.reserve(buffers_per_source.size());
  out.rate.reserve(buffers_per_source.size());
  const double start = monotonic_s();
  for (long long sweep = 0; sweep < sweeps; ++sweep) {
    std::size_t hint = 1;
    for (std::size_t i = 0; i < buffers_per_source.size(); ++i) {
      const cc::BopPoint point =
          pass == Pass::kCold
              ? cc::br_log10_bop(rate, buffers_per_source[i], n_sources)
              : cc::br_log10_bop(rate, buffers_per_source[i], n_sources,
                                 hint);
      hint = point.critical_m;
      if (sweep == 0) {
        out.critical_m.push_back(point.critical_m);
        out.log10_bop.push_back(point.log10_bop);
        out.rate.push_back(point.rate);
      }
    }
  }
  out.seconds = monotonic_s() - start;
  return out;
}

bool identical(const SweepResult& reference, const SweepResult& candidate,
               const std::string& model, const char* what) {
  for (std::size_t i = 0; i < reference.critical_m.size(); ++i) {
    if (candidate.critical_m[i] != reference.critical_m[i] ||
        candidate.log10_bop[i] != reference.log10_bop[i] ||
        candidate.rate[i] != reference.rate[i]) {
      std::fprintf(stderr,
                   "scan_sweep: %s pass diverged from the cold scalar scan "
                   "(model %s, grid point %zu)\n",
                   what, model.c_str(), i);
      return false;
    }
  }
  return true;
}

/// Shortest-exact double formatting for the CSV mirror: byte-stable across
/// runs and SIMD kinds, diffable with cmp(1).
std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard guard(flags, bench::spec("scan_sweep"),
                              {"points", "sweeps"});
  bench::banner(
      "Scan sweep: warm-started, SIMD-dispatched CTS scans (Bahadur-Rao)");
  cu::CsvWriter csv({"model", "buffer_ms", "critical_m", "log10_bop", "rate"});

  const long long points = flags.get_int("points", 1500);
  const long long sweeps = flags.get_int("sweeps", 8);
  const cts::sim::MuxGeometry geometry = bench::paper_mux_30();
  const std::vector<double> grid_ms = cts::sim::buffer_grid_ms(
      0.5, 2000.0, static_cast<std::size_t>(points));
  std::vector<double> buffers(grid_ms.size());
  for (std::size_t i = 0; i < grid_ms.size(); ++i) {
    buffers[i] = geometry.buffer_ms_to_cells(grid_ms[i]) /
                 static_cast<double>(geometry.n_sources);
  }

  // The kernel the dispatcher would pick on its own (honours CTS_SIMD);
  // resolved before the scalar-forced passes below.
  const std::string dispatched = cds::kind_name(cds::active());
  struct ForceGuard {
    ~ForceGuard() { cds::clear_force(); }
  } force_guard;

  const std::vector<cts::fit::ModelSpec> models = {
      cts::fit::make_za(0.9),
      cts::fit::make_l(),
      cts::fit::make_ar1(0.975),
  };

  cu::TextTable table({"model", "points", "cold ms", "warm ms", "simd ms",
                       "warm x", "simd x", "total x"});
  double min_warm = 0.0;
  double min_total = 0.0;
  for (const cts::fit::ModelSpec& model : models) {
    const cc::RateFunction rate(model.acf, model.mean, model.variance,
                                geometry.bandwidth_per_source);
    // One untimed evaluation at the largest buffer grows the shared V(m)
    // table to its final extent, so every timed pass below measures pure
    // scan work on equal footing.
    (void)rate.evaluate(buffers.back());

    cds::force(cds::Kind::kScalar);
    const SweepResult cold =
        run_pass(rate, buffers, geometry.n_sources, Pass::kCold, sweeps);
    const SweepResult warm =
        run_pass(rate, buffers, geometry.n_sources, Pass::kWarm, sweeps);
    cds::clear_force();
    const SweepResult simd =
        run_pass(rate, buffers, geometry.n_sources, Pass::kWarm, sweeps);

    if (!identical(cold, warm, model.name, "warm-scalar") ||
        !identical(cold, simd, model.name, "warm-dispatched")) {
      return 1;
    }

    const double warm_x = cold.seconds / warm.seconds;
    const double simd_x = warm.seconds / simd.seconds;
    const double total_x = cold.seconds / simd.seconds;
    if (min_warm == 0.0 || warm_x < min_warm) min_warm = warm_x;
    if (min_total == 0.0 || total_x < min_total) min_total = total_x;
    table.add_row({model.name, cu::format_int(points),
                   cu::format_fixed(cold.seconds * 1e3, 1),
                   cu::format_fixed(warm.seconds * 1e3, 1),
                   cu::format_fixed(simd.seconds * 1e3, 1),
                   cu::format_fixed(warm_x, 2), cu::format_fixed(simd_x, 2),
                   cu::format_fixed(total_x, 2)});
    for (std::size_t i = 0; i < grid_ms.size(); ++i) {
      csv.add_row({model.name, g17(grid_ms[i]),
                   cu::format_int(static_cast<long long>(cold.critical_m[i])),
                   g17(cold.log10_bop[i]), g17(cold.rate[i])});
    }
    obs::MetricsRegistry::global().gauge("scan_sweep.warm_speedup." +
                                             model.name,
                                         warm_x);
    obs::MetricsRegistry::global().gauge("scan_sweep.simd_speedup." +
                                             model.name,
                                         simd_x);
    obs::MetricsRegistry::global().gauge("scan_sweep.total_speedup." +
                                             model.name,
                                         total_x);
  }
  obs::MetricsRegistry::global().gauge("scan_sweep.min_warm_speedup",
                                       min_warm);
  obs::MetricsRegistry::global().gauge("scan_sweep.min_total_speedup",
                                       min_total);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: all three passes bit-identical (enforced); the "
      "dispatched kernel (%s here)\nbuys >= 2x over the cold scalar sweep "
      "on AVX2 hosts (min total speedup this run: %.2fx).\n",
      dispatched.c_str(), min_total);
  bench::maybe_write_csv(flags, csv, "scan_sweep.csv");
  return 0;
}
