// Ablation (Section 6.2): the Critical Time Scale vs the spectral cutoff.
//
// The paper: "the CTS is closely related with the cutoff frequency omega_c
// introduced in [11, 12, 13]".  This bench makes the relation concrete:
// for each model in the zoo it prints the CTS at a fixed practical buffer
// alongside the cutoff frequency's time scale 2*pi/omega_c, and their
// rank ordering.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/spectrum.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("ablation_cutoff"), {"buffer-ms"});
  bench::banner(
      "Ablation: Critical Time Scale vs spectral cutoff time scale "
      "(Section 6.2)");
  cu::CsvWriter csv({"model", "critical_m", "cutoff_w", "cutoff_frames"});

  const cm::MuxGeometry g = bench::paper_mux_100();
  const double ms = flags.get_double("buffer-ms", 8.0);
  const double b = g.buffer_ms_to_cells(ms) /
                   static_cast<double>(g.n_sources);

  const std::vector<cf::ModelSpec> models = {
      cf::make_za(0.7),     cf::make_za(0.9),
      cf::make_za(0.975),   cf::make_za(0.99),
      cf::make_l(),         cf::make_dar_matched_to_za(0.975, 1),
      cf::make_ar1(0.5),    cf::make_white()};

  cu::TextTable table({"model", "m* (frames)", "omega_c (rad/frame)",
                       "2*pi/omega_c (frames)"});
  for (const auto& m : models) {
    cc::RateFunction rate(m.acf, m.mean, m.variance,
                          g.bandwidth_per_source);
    const auto cts_m = rate.evaluate(b).critical_m;
    const cc::Spectrum spectrum(m.acf, m.variance, 1u << 14);
    const double wc = spectrum.cutoff_frequency(0.5);
    table.add_row({m.name, cu::format_int(static_cast<long long>(cts_m)),
                   cu::format_fixed(wc, 4),
                   cu::format_fixed(cc::cutoff_time_scale(wc), 1)});
    csv.add_row({m.name, cu::format_int(static_cast<long long>(cts_m)),
                 cu::format_fixed(wc, 6),
                 cu::format_fixed(cc::cutoff_time_scale(wc), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: models with larger CTS carry their power at lower "
      "frequencies (larger 2*pi/omega_c);\nthe two time scales rank the "
      "zoo identically within each model family (B = %.1f ms).\n", ms);
  bench::maybe_write_csv(flags, csv, "ablation_cutoff.csv");
  return 0;
}
