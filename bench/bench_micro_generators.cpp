// Micro-benchmarks (google-benchmark): throughput of the traffic
// generators.  These quantify the cost structure behind the simulation
// experiments -- FBNDP pays for ON/OFF bookkeeping + Poisson sampling,
// DAR/AR1 are branch-cheap, FGN depends on the generation algorithm.

#include <benchmark/benchmark.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/proc/ar1.hpp"
#include "cts/proc/dar.hpp"
#include "cts/proc/fbndp.hpp"
#include "cts/proc/fgn.hpp"
#include "cts/fit/fbndp_calibration.hpp"
#include "cts/util/rng.hpp"

namespace {

void BM_Xoshiro(benchmark::State& state) {
  cts::util::Xoshiro256pp rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

void BM_NormalSampler(benchmark::State& state) {
  cts::util::Xoshiro256pp rng(1);
  cts::util::NormalSampler normal;
  for (auto _ : state) benchmark::DoNotOptimize(normal(rng));
}
BENCHMARK(BM_NormalSampler);

void BM_PoissonSample(benchmark::State& state) {
  cts::util::Xoshiro256pp rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::util::poisson_sample(rng, mean));
  }
}
BENCHMARK(BM_PoissonSample)->Arg(5)->Arg(50)->Arg(250);

void BM_Ar1Frame(benchmark::State& state) {
  cts::proc::Ar1Params p;
  p.phi = 0.8;
  cts::proc::Ar1Source source(p, 1);
  for (auto _ : state) benchmark::DoNotOptimize(source.next_frame());
}
BENCHMARK(BM_Ar1Frame);

void BM_DarFrame(benchmark::State& state) {
  cts::proc::DarParams p;
  p.rho = 0.9;
  p.lag_probs.assign(static_cast<std::size_t>(state.range(0)), 0.0);
  for (auto& a : p.lag_probs) a = 1.0 / static_cast<double>(p.lag_probs.size());
  cts::proc::DarSource source(p, 1);
  for (auto _ : state) benchmark::DoNotOptimize(source.next_frame());
}
BENCHMARK(BM_DarFrame)->Arg(1)->Arg(3);

void BM_FbndpFrame(benchmark::State& state) {
  cts::fit::FbndpTarget target;
  target.mean = 250.0;
  target.variance = 2500.0;
  target.alpha = 0.8;
  target.M = static_cast<std::uint32_t>(state.range(0));
  cts::proc::FbndpSource source(cts::fit::calibrate_fbndp(target), 1);
  for (auto _ : state) benchmark::DoNotOptimize(source.next_frame());
}
BENCHMARK(BM_FbndpFrame)->Arg(15)->Arg(30);

void BM_ZaFrame(benchmark::State& state) {
  const cts::fit::ModelSpec spec = cts::fit::make_za(0.975);
  auto source = spec.make_source(1);
  for (auto _ : state) benchmark::DoNotOptimize(source->next_frame());
}
BENCHMARK(BM_ZaFrame);

void BM_FgnDaviesHarteFrame(benchmark::State& state) {
  cts::proc::FgnParams p;
  p.hurst = 0.8;
  cts::proc::FgnDaviesHarte source(p, 1 << 12, 1);
  for (auto _ : state) benchmark::DoNotOptimize(source.next_frame());
}
BENCHMARK(BM_FgnDaviesHarteFrame);

void BM_FgnHoskingFrame(benchmark::State& state) {
  cts::proc::FgnParams p;
  p.hurst = 0.8;
  cts::proc::FgnHosking source(p, 1);
  // Hosking cost grows with history; measure a bounded window.
  for (auto _ : state) benchmark::DoNotOptimize(source.next_frame());
}
BENCHMARK(BM_FgnHoskingFrame)->Iterations(4096);

}  // namespace

BENCHMARK_MAIN();
