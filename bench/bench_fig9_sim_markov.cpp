// Figure 9: SIMULATED CLRs of Z^a, its matched DAR(p), and L (N = 30,
// c = 538) -- the simulation counterpart of Fig. 6: a well-designed Markov
// model predicts the loss of LRD traffic; the pure-LRD L does not.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const cm::MuxGeometry& g, const std::vector<double>& grid,
           const cm::ReplicationConfig& scale, cu::CsvWriter& csv,
           const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"B (msec)"};
  for (const auto& m : models) headers.push_back("log10 " + m.name);
  cu::TextTable table(std::move(headers));
  std::vector<cm::SimulatedCurve> curves;
  for (const auto& m : models) {
    curves.push_back(cm::simulated_clr_curve(m, g, grid, scale));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {cu::format_fixed(grid[i], 1)};
    for (const auto& curve : curves) {
      row.push_back(bench::log10_or_floor(curve.clr[i]));
      csv.add_row({panel_id, cu::format_fixed(grid[i], 3), curve.model,
                   cu::format_sci(curve.clr[i], 4)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig9_sim_markov"));
  bench::banner(
      "Figure 9: simulated CLRs -- Z^a vs matched DAR(p) vs L (N = 30, "
      "c = 538)");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "clr"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const cm::ReplicationConfig scale = bench::bench_scale();
  std::printf("[scale: %zu reps x %llu frames]\n", scale.replications,
              static_cast<unsigned long long>(scale.frames_per_replication));
  bench::shard_note(scale);
  std::printf("\n");
  const std::vector<double> grid = {1e-6, 2.0, 4.0, 8.0, 16.0, 30.0};

  panel("(a) Z^0.975 vs DAR(p) vs L",
        {cf::make_za(0.975), cf::make_dar_matched_to_za(0.975, 1),
         cf::make_dar_matched_to_za(0.975, 2),
         cf::make_dar_matched_to_za(0.975, 3), cf::make_l()},
        g, grid, scale, csv, "a");
  panel("(b) Z^0.7 vs DAR(p)",
        {cf::make_za(0.7), cf::make_dar_matched_to_za(0.7, 1),
         cf::make_dar_matched_to_za(0.7, 2),
         cf::make_dar_matched_to_za(0.7, 3)},
        g, grid, scale, csv, "b");

  std::printf(
      "expected shape: DAR(p) tracks Z within a fraction of a decade "
      "(closer as p grows); L overestimates the loss badly at small B.\n");

  if (!cts::util::env_flag("REPRO_FULL")) {
    std::printf(
        "\n-- CI validation panel: same comparison at c = 520 (resolvable "
        "at this scale) --\n\n");
    const cm::MuxGeometry gv = bench::validation_mux_30();
    const std::vector<double> vgrid = {1e-6, 2.0, 6.0, 12.0};
    panel("(a') Z^0.975 vs DAR(p) vs L at c = 520",
          {cf::make_za(0.975), cf::make_dar_matched_to_za(0.975, 1),
           cf::make_dar_matched_to_za(0.975, 3), cf::make_l()},
          gv, vgrid, scale, csv, "a_ci");
  }
  bench::maybe_write_csv(flags, csv, "fig9.csv");
  return 0;
}
