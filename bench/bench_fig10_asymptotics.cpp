// Figure 10: accuracy of the two large-buffer asymptotics.  Model: DAR(1)
// matched to Z^0.975, N = 30, c = 538.  Prints simulated CLR, Bahadur-Rao,
// and Large-N side by side: all three parallel; B-R ~1 order tighter than
// Large-N; both ~2 orders above the simulated (finite-buffer) CLR.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/core/large_n.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig10_asymptotics"));
  bench::banner(
      "Figure 10: large-buffer asymptotics vs simulation -- DAR(1)~Z^0.975 "
      "(N = 30, c = 538)");
  cu::CsvWriter csv({"buffer_ms", "log10_sim_clr", "log10_br", "log10_large_n"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const cf::ModelSpec model = cf::make_dar_matched_to_za(0.975, 1);
  const std::vector<double> grid = {1.0, 2.0, 4.0, 8.0, 16.0, 30.0};

  const cm::AnalyticCurve br = cm::br_curve(model, g, grid);
  const cm::AnalyticCurve ln = cm::large_n_curve(model, g, grid);
  const cm::SimulatedCurve sim =
      cm::simulated_clr_curve(model, g, grid, bench::bench_scale());

  cu::TextTable table(
      {"B (msec)", "sim CLR", "B-R", "large-N", "BR-sim gap", "LN-BR gap"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::string sim_str = bench::log10_or_floor(sim.clr[i]);
    const double gap_br =
        sim.clr[i] > 0.0 ? br.log10_bop[i] - std::log10(sim.clr[i]) : 0.0;
    table.add_row({cu::format_fixed(grid[i], 1), sim_str,
                   cu::format_fixed(br.log10_bop[i], 2),
                   cu::format_fixed(ln.log10_bop[i], 2),
                   sim.clr[i] > 0.0 ? cu::format_fixed(gap_br, 2) : "-",
                   cu::format_fixed(ln.log10_bop[i] - br.log10_bop[i], 2)});
    csv.add_row({cu::format_fixed(grid[i], 3), sim_str,
                 cu::format_fixed(br.log10_bop[i], 4),
                 cu::format_fixed(ln.log10_bop[i], 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: three parallel lines; B-R below large-N by ~1 order; "
      "B-R above the simulated CLR by ~2 orders.\n");

  if (!cts::util::env_flag("REPRO_FULL")) {
    std::printf(
        "\n-- CI validation panel: same comparison at c = 520 (resolvable "
        "at this scale) --\n\n");
    const cm::MuxGeometry gv = bench::validation_mux_30();
    const std::vector<double> vgrid = {2.0, 6.0, 12.0, 20.0};
    const cm::AnalyticCurve brv = cm::br_curve(model, gv, vgrid);
    const cm::AnalyticCurve lnv = cm::large_n_curve(model, gv, vgrid);
    const cm::SimulatedCurve simv =
        cm::simulated_clr_curve(model, gv, vgrid, bench::bench_scale());
    cu::TextTable tv({"B (msec)", "sim CLR", "B-R", "large-N"});
    for (std::size_t i = 0; i < vgrid.size(); ++i) {
      tv.add_row({cu::format_fixed(vgrid[i], 1),
                  bench::log10_or_floor(simv.clr[i]),
                  cu::format_fixed(brv.log10_bop[i], 2),
                  cu::format_fixed(lnv.log10_bop[i], 2)});
    }
    std::printf("%s\n", tv.render().c_str());
  }
  bench::maybe_write_csv(flags, csv, "fig10.csv");
  return 0;
}
