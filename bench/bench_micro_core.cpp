// Micro-benchmarks (google-benchmark): the analytic core -- rate-function
// evaluation (the CTS search), aggregate variance, asymptotics and fitting.

#include <benchmark/benchmark.h>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/variance_growth.hpp"
#include "cts/core/weibull_lrd.hpp"
#include "cts/fit/dar_fit.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/fit/tail_fit.hpp"

namespace {

void BM_VarianceGrowth(benchmark::State& state) {
  auto acf = std::make_shared<cts::core::ExactLrdAcf>(0.9, 0.9);
  const cts::core::VarianceGrowth v(acf, 5000.0);
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(v.at(m));
}
BENCHMARK(BM_VarianceGrowth)->Arg(100)->Arg(10000);

void BM_RateFunctionLrd(benchmark::State& state) {
  const cts::fit::ModelSpec model = cts::fit::make_za(0.975);
  cts::core::RateFunction rate(model.acf, model.mean, model.variance, 538.0);
  const double b = static_cast<double>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(rate.evaluate(b));
}
BENCHMARK(BM_RateFunctionLrd)->Arg(10)->Arg(100)->Arg(1000);

void BM_BrCurvePoint(benchmark::State& state) {
  const cts::fit::ModelSpec model = cts::fit::make_l();
  cts::core::RateFunction rate(model.acf, model.mean, model.variance, 538.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::core::br_log10_bop(rate, 500.0, 30));
  }
}
BENCHMARK(BM_BrCurvePoint);

void BM_WeibullBop(benchmark::State& state) {
  cts::core::WeibullLrdParams p;
  p.hurst = 0.9;
  p.weight = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::core::weibull_log10_bop(p, 30, 12000.0));
  }
}
BENCHMARK(BM_WeibullBop);

void BM_DarFit(benchmark::State& state) {
  const cts::fit::ModelSpec z = cts::fit::make_za(0.975);
  const auto p = static_cast<std::size_t>(state.range(0));
  std::vector<double> targets(p);
  for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = z.acf->at(k);
  for (auto _ : state) benchmark::DoNotOptimize(cts::fit::fit_dar(targets));
}
BENCHMARK(BM_DarFit)->Arg(1)->Arg(3)->Arg(8);

void BM_TailFit(benchmark::State& state) {
  const cts::fit::ModelSpec z = cts::fit::make_za(0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::fit::fit_lrd_tail(
        [&](std::size_t k) { return z.acf->at(k); }, 0.9));
  }
}
BENCHMARK(BM_TailFit);

void BM_ModelZooConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::fit::make_za(0.975));
  }
}
BENCHMARK(BM_ModelZooConstruction);

}  // namespace

BENCHMARK_MAIN();
