// Figure 1 (conceptual): how the knobs a (Z^a) and v (V^v) reshape the
// autocorrelation function.  Changing a moves the short-lag geometric
// shoulder; changing v moves the long-lag power-law tail while the pinned
// first lag stays put.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig1_acf_concept"));
  bench::banner("Figure 1: effect of a (Z^a) and v (V^v) on the ACF");

  const std::vector<std::size_t> lags = {1, 2, 5, 10, 20, 50, 100, 500, 1000};

  std::printf("Z^a: a moves the SHORT-term correlations\n\n");
  cu::TextTable za({"lag", "Z^0.7", "Z^0.9", "Z^0.975", "Z^0.99"});
  cu::CsvWriter csv({"family", "lag", "curve", "r"});
  const std::vector<double> avals = {0.7, 0.9, 0.975, 0.99};
  std::vector<cf::ModelSpec> zmodels;
  for (const double a : avals) zmodels.push_back(cf::make_za(a));
  for (const std::size_t k : lags) {
    std::vector<std::string> row = {cu::format_int(
        static_cast<long long>(k))};
    for (std::size_t i = 0; i < zmodels.size(); ++i) {
      row.push_back(cu::format_fixed(zmodels[i].acf->at(k), 4));
      csv.add_row({"Z", cu::format_int(static_cast<long long>(k)),
                   zmodels[i].name, cu::format_fixed(zmodels[i].acf->at(k), 6)});
    }
    za.add_row(std::move(row));
  }
  std::printf("%s\n", za.render().c_str());

  std::printf("V^v: v moves the LONG-term correlations (first lag pinned)\n\n");
  cu::TextTable vv({"lag", "V^0.67", "V^1", "V^1.5"});
  std::vector<cf::ModelSpec> vmodels = {cf::make_vv(0.67), cf::make_vv(1.0),
                                        cf::make_vv(1.5)};
  for (const std::size_t k : lags) {
    std::vector<std::string> row = {cu::format_int(
        static_cast<long long>(k))};
    for (const auto& m : vmodels) {
      row.push_back(cu::format_fixed(m.acf->at(k), 4));
      csv.add_row({"V", cu::format_int(static_cast<long long>(k)), m.name,
                   cu::format_fixed(m.acf->at(k), 6)});
    }
    vv.add_row(std::move(row));
  }
  std::printf("%s\n", vv.render().c_str());
  std::printf(
      "expected shape: Z columns differ at small lags, converge at large "
      "lags;\nV columns identical at lag 1, spread at large lags.\n");

  bench::maybe_write_csv(flags, csv, "fig1.csv");
  return 0;
}
