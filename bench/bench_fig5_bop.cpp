// Figure 5: buffer overflow probabilities from the Bahadur-Rao asymptotic,
// N = 30, c = 538 cells/frame.
//   (a) V^v: close short-term correlations -> bundled BOP curves
//   (b) Z^a: different short-term correlations -> fanned BOP curves
//       despite identical long-term correlations.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const cm::MuxGeometry& g, const std::vector<double>& grid,
           cu::CsvWriter& csv, const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"B (msec)"};
  for (const auto& m : models) headers.push_back("log10 " + m.name);
  cu::TextTable table(std::move(headers));

  std::vector<cm::AnalyticCurve> curves;
  for (const auto& m : models) curves.push_back(cm::br_curve(m, g, grid));

  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {cu::format_fixed(grid[i], 1)};
    for (const auto& curve : curves) {
      row.push_back(cu::format_fixed(curve.log10_bop[i], 2));
      csv.add_row({panel_id, cu::format_fixed(grid[i], 3), curve.model,
                   cu::format_fixed(curve.log10_bop[i], 4)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig5_bop"));
  bench::banner(
      "Figure 5: B-R asymptotic BOPs (N = 30, c = 538 cells/frame)");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "log10_bop"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const std::vector<double> grid = {0.5, 1.0, 2.0, 4.0, 6.0, 8.0,
                                    12.0, 16.0, 20.0, 25.0, 30.0};

  panel("(a) V^v", {cf::make_vv(0.67), cf::make_vv(1.0), cf::make_vv(1.5)},
        g, grid, csv, "a");
  panel("(b) Z^a",
        {cf::make_za(0.7), cf::make_za(0.9), cf::make_za(0.975),
         cf::make_za(0.99)},
        g, grid, csv, "b");

  std::printf(
      "expected shape: (a) three curves within a fraction of a decade; "
      "(b) decades of spread, slower decay for larger a.\n");
  bench::maybe_write_csv(flags, csv, "fig5.csv");
  return 0;
}
