// Figure 7: the same comparison as Figure 6 but over an unrealistically
// wide buffer range, exposing where the two "myths" come from: the L model
// eventually wins, and the Z^a decay slope bends to match L's -- but only
// far beyond any real-time-delay budget.  The bench also locates the
// DAR(1)/L crossover buffer numerically.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig7_wide_range"));
  bench::banner(
      "Figure 7: wide-buffer-range BOPs, log10 (N = 30, c = 538) -- where "
      "the myths come from");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "log10_bop"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  // Geometric grid from inside the practical box out to ~4 seconds of
  // buffering (two+ orders beyond any real-time budget).
  const std::vector<double> grid = cm::buffer_grid_ms(1.0, 4000.0, 13);

  const std::vector<cf::ModelSpec> models_a = {
      cf::make_za(0.975), cf::make_dar_matched_to_za(0.975, 1),
      cf::make_dar_matched_to_za(0.975, 3), cf::make_l()};
  const std::vector<cf::ModelSpec> models_b = {
      cf::make_za(0.7), cf::make_dar_matched_to_za(0.7, 1),
      cf::make_dar_matched_to_za(0.7, 3), cf::make_l()};

  for (const auto& [panel_id, models] :
       {std::pair<const char*, const std::vector<cf::ModelSpec>&>{
            "a", models_a},
        std::pair<const char*, const std::vector<cf::ModelSpec>&>{
            "b", models_b}}) {
    std::printf("(%s) %s family over 1 msec .. 4 sec\n\n", panel_id,
                models[0].name.c_str());
    std::vector<std::string> headers = {"B (msec)"};
    for (const auto& m : models) headers.push_back(m.name);
    cu::TextTable table(std::move(headers));
    std::vector<cm::AnalyticCurve> curves;
    for (const auto& m : models) curves.push_back(cm::br_curve(m, g, grid));
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::vector<std::string> row = {cu::format_fixed(grid[i], 0)};
      for (const auto& curve : curves) {
        row.push_back(cu::format_fixed(curve.log10_bop[i], 1));
        csv.add_row({panel_id, cu::format_fixed(grid[i], 2), curve.model,
                     cu::format_fixed(curve.log10_bop[i], 4)});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Locate the buffer where the pure-LRD L first predicts Z^0.975 better
  // than the matched DAR(1): the "crossover" the second myth extrapolates
  // from.
  const cf::ModelSpec z = cf::make_za(0.975);
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.975, 1);
  const cf::ModelSpec l = cf::make_l();
  const std::vector<double> fine = cm::buffer_grid_ms(1.0, 4000.0, 60);
  const cm::AnalyticCurve zc = cm::br_curve(z, g, fine);
  const cm::AnalyticCurve dc = cm::br_curve(dar, g, fine);
  const cm::AnalyticCurve lc = cm::br_curve(l, g, fine);
  double crossover = -1.0;
  for (std::size_t i = 0; i < fine.size(); ++i) {
    const double err_dar = std::abs(dc.log10_bop[i] - zc.log10_bop[i]);
    const double err_l = std::abs(lc.log10_bop[i] - zc.log10_bop[i]);
    if (err_l < err_dar) {
      crossover = fine[i];
      break;
    }
  }
  if (crossover > 0.0) {
    std::printf(
        "DAR(1)/L prediction crossover for Z^0.975 at B ~ %.0f msec "
        "(practical budget: 20-30 msec)\n", crossover);
  } else {
    std::printf("no DAR(1)/L crossover found below 4 sec of buffer\n");
  }
  std::printf(
      "expected shape: inside the practical box DAR wins; L wins only at "
      "B far beyond it; Z slope bends to L's from ~40 msec.\n");
  bench::maybe_write_csv(flags, csv, "fig7.csv");
  return 0;
}
