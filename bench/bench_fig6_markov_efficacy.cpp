// Figure 6: can parsimonious Markov models predict LRD buffer behaviour?
// B-R BOPs of Z^a, its matched DAR(p) (p = 1, 2, 3), and the pure-LRD L,
// over the practical buffer range (N = 30, c = 538).
//   (a) Z^0.975 vs DAR(p) vs L
//   (b) Z^0.7   vs DAR(p)

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const cm::MuxGeometry& g, const std::vector<double>& grid,
           cu::CsvWriter& csv, const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"B (msec)"};
  for (const auto& m : models) headers.push_back(m.name);
  cu::TextTable table(std::move(headers));
  std::vector<cm::AnalyticCurve> curves;
  for (const auto& m : models) curves.push_back(cm::br_curve(m, g, grid));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {cu::format_fixed(grid[i], 1)};
    for (const auto& curve : curves) {
      row.push_back(cu::format_fixed(curve.log10_bop[i], 2));
      csv.add_row({panel_id, cu::format_fixed(grid[i], 3), curve.model,
                   cu::format_fixed(curve.log10_bop[i], 4)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig6_markov_efficacy"));
  bench::banner(
      "Figure 6: efficacy of Markov models -- B-R BOPs, log10 (N = 30, "
      "c = 538)");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "log10_bop"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const std::vector<double> grid = {0.5, 1.0, 2.0, 4.0, 6.0, 8.0,
                                    12.0, 16.0, 20.0, 25.0, 30.0};

  panel("(a) Z^0.975 vs matched DAR(p) and L",
        {cf::make_za(0.975), cf::make_dar_matched_to_za(0.975, 1),
         cf::make_dar_matched_to_za(0.975, 2),
         cf::make_dar_matched_to_za(0.975, 3), cf::make_l()},
        g, grid, csv, "a");
  panel("(b) Z^0.7 vs matched DAR(p)",
        {cf::make_za(0.7), cf::make_dar_matched_to_za(0.7, 1),
         cf::make_dar_matched_to_za(0.7, 2),
         cf::make_dar_matched_to_za(0.7, 3)},
        g, grid, csv, "b");

  std::printf(
      "expected shape: DAR(p) -> Z monotonically in p; even DAR(1) beats L "
      "throughout this range;\n(b) all curves within ~1 order at the 1e-6 "
      "level.\n");
  bench::maybe_write_csv(flags, csv, "fig6.csv");
  return 0;
}
