// Service bench: sustained CAC queries/sec through the admission cache
// (tools/cts_cacd's analytic core), cold versus warm.
//
// The paper's engineering claim is that the CTS analysis makes one
// admission decision cheap enough to run per offered VC.  This bench
// quantifies "cheap" for the serving path: a cold pass answers a buffer
// sweep of admit_br batches on an empty atm::CacCache (every probe runs a
// real CTS scan, later probes warm-starting from cached neighbours), then
// warm passes replay the identical workload against the populated cache
// (pure memo lookups + the closed-form Bahadur-Rao step).  The warm/cold
// throughput ratio is the service's cache win; the committed BENCH_*.json
// baselines track both via cts_benchd.

#include <ctime>
#include <cstdio>

#include "bench_common.hpp"
#include "cts/atm/cac_cache.hpp"
#include "cts/obs/metrics.hpp"

namespace atm = cts::atm;
namespace cu = cts::util;
namespace obs = cts::obs;

namespace {

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One admission workload: the paper's link (Section 5.4) swept across a
/// buffer grid, per model.
std::vector<atm::CacProblem> workload() {
  std::vector<atm::CacProblem> problems;
  for (const double buffer : {500.0, 1000.0, 2000.0, 4035.0, 8000.0,
                              16000.0, 32000.0}) {
    atm::CacProblem p;
    p.capacity_cells_per_frame = 16140.0;
    p.buffer_cells = buffer;
    p.log10_target_clr = -6.0;
    problems.push_back(p);
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard guard(flags, bench::spec("cacd"), {"warm-reps"});
  bench::banner("Admission service: CAC throughput, cold vs warm cache");
  cu::CsvWriter csv({"model", "queries", "cold_qps", "warm_qps", "speedup",
                     "warm_starts", "cache_entries"});

  // Warm replays per model: enough that the per-query cost dominates the
  // timer, small enough for the smoke suite.
  const long long warm_reps = flags.get_int("warm-reps", 200);

  const std::vector<cts::fit::ModelSpec> models = {
      cts::fit::make_za(0.9),
      cts::fit::make_dar_matched_to_za(0.9, 1),
      cts::fit::make_ar1(0.8),
  };
  const std::vector<atm::CacProblem> problems = workload();

  cu::TextTable table({"model", "queries", "cold q/s", "warm q/s",
                       "speedup", "warm starts", "entries"});
  double min_speedup = 0.0;
  for (const cts::fit::ModelSpec& model : models) {
    atm::CacCache cache;

    const double cold_start = monotonic_s();
    for (const atm::CacProblem& p : problems) {
      (void)cache.admissible_br(model, p);
    }
    const double cold_s = monotonic_s() - cold_start;
    const double cold_qps = static_cast<double>(problems.size()) / cold_s;

    const double warm_start = monotonic_s();
    for (long long rep = 0; rep < warm_reps; ++rep) {
      for (const atm::CacProblem& p : problems) {
        (void)cache.admissible_br(model, p);
      }
    }
    const double warm_s = monotonic_s() - warm_start;
    const double warm_qps =
        static_cast<double>(problems.size()) *
        static_cast<double>(warm_reps) / warm_s;

    const double speedup = warm_qps / cold_qps;
    if (min_speedup == 0.0 || speedup < min_speedup) min_speedup = speedup;
    const atm::CacCache::Stats stats = cache.stats();
    table.add_row({model.name, cu::format_int(static_cast<long long>(
                                   problems.size())),
                   cu::format_fixed(cold_qps, 1), cu::format_fixed(warm_qps, 0),
                   cu::format_fixed(speedup, 1),
                   cu::format_int(static_cast<long long>(stats.warm_starts)),
                   cu::format_int(static_cast<long long>(
                       stats.rate_entries))});
    csv.add_row({model.name,
                 cu::format_int(static_cast<long long>(problems.size())),
                 cu::format_fixed(cold_qps, 2), cu::format_fixed(warm_qps, 2),
                 cu::format_fixed(speedup, 2),
                 cu::format_int(static_cast<long long>(stats.warm_starts)),
                 cu::format_int(static_cast<long long>(stats.rate_entries))});

    obs::MetricsRegistry::global().gauge("cacd.cold_qps." + model.name,
                                         cold_qps);
    obs::MetricsRegistry::global().gauge("cacd.warm_qps." + model.name,
                                         warm_qps);
  }
  obs::MetricsRegistry::global().gauge("cacd.min_speedup", min_speedup);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: warm-cache throughput >= 10x cold — the memoized "
      "rate points turn a CTS scan\ninto a map lookup plus the closed-form "
      "Bahadur-Rao step (min speedup this run: %.1fx).\n",
      min_speedup);
  bench::maybe_write_csv(flags, csv, "cacd.csv");
  return 0;
}
