// Figure 3: analytic autocorrelation functions.
//   (a) V^v for v in {0.67, 1, 1.5}     -- close short lags, spread tails
//   (b) Z^a for a in {0.7..0.99} and L  -- L tracks every Z tail
//   (c) DAR(p) vs Z^0.7                 -- exact match at lags <= p
//   (d) DAR(p) vs Z^0.975

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const std::vector<std::size_t>& lags, cu::CsvWriter& csv,
           const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"lag"};
  for (const auto& m : models) headers.push_back(m.name);
  cu::TextTable table(std::move(headers));
  for (const std::size_t k : lags) {
    std::vector<std::string> row = {cu::format_int(
        static_cast<long long>(k))};
    for (const auto& m : models) {
      const double r = m.acf->at(k);
      row.push_back(cu::format_fixed(r, 5));
      csv.add_row({panel_id, cu::format_int(static_cast<long long>(k)),
                   m.name, cu::format_fixed(r, 6)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig3_acf"));
  bench::banner("Figure 3: analytic ACFs of V^v, Z^a, S = DAR(p), and L");
  cu::CsvWriter csv({"panel", "lag", "model", "r"});

  const std::vector<std::size_t> short_lags = {1, 2, 3, 4, 5, 8, 12, 20, 30};
  const std::vector<std::size_t> long_lags = {1,  2,   5,   10,  20,  50,
                                              100, 200, 500, 1000};

  panel("(a) V^v: first lag pinned, tails spread with v",
        {cf::make_vv(0.67), cf::make_vv(1.0), cf::make_vv(1.5)}, long_lags,
        csv, "a");

  panel("(b) Z^a and L: diverse short lags, common power-law tail",
        {cf::make_za(0.7), cf::make_za(0.9), cf::make_za(0.975),
         cf::make_za(0.99), cf::make_l()},
        long_lags, csv, "b");

  panel("(c) DAR(p) matched to Z^0.7 (exact at lags <= p)",
        {cf::make_za(0.7), cf::make_dar_matched_to_za(0.7, 1),
         cf::make_dar_matched_to_za(0.7, 2),
         cf::make_dar_matched_to_za(0.7, 3)},
        short_lags, csv, "c");

  panel("(d) DAR(p) matched to Z^0.975",
        {cf::make_za(0.975), cf::make_dar_matched_to_za(0.975, 1),
         cf::make_dar_matched_to_za(0.975, 2),
         cf::make_dar_matched_to_za(0.975, 3)},
        short_lags, csv, "d");

  std::printf(
      "expected shape: (a) columns equal at lag 1; (b) all Z columns and L "
      "converge by lag ~100-1000;\n(c,d) DAR(p) equals Z at lags <= p, then "
      "decays geometrically below the LRD tail.\n");
  bench::maybe_write_csv(flags, csv, "fig3.csv");
  return 0;
}
