// Figure 2: sample paths of Z^0.7 versus its matched DAR(1), N = 10
// sources multiplexed.  The text rendering prints coarse-grained aggregate
// rate series plus the diagnostics that make the paper's point visible in
// numbers: the two processes share marginal moments and lag-1 correlation,
// but only Z^0.7 carries Hurst > 0.5 ("bursts within bursts").

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/stats/acf.hpp"
#include "cts/stats/hurst.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cs = cts::stats;
namespace cu = cts::util;

namespace {

std::vector<double> aggregate_path(const cf::ModelSpec& model,
                                   std::size_t n_sources, std::size_t frames,
                                   std::uint64_t seed) {
  std::vector<std::unique_ptr<cts::proc::FrameSource>> sources;
  for (std::size_t s = 0; s < n_sources; ++s) {
    sources.push_back(model.make_source(seed + s));
  }
  std::vector<double> path(frames, 0.0);
  for (std::size_t t = 0; t < frames; ++t) {
    for (auto& src : sources) path[t] += src->next_frame();
  }
  return path;
}

void describe(const std::string& name, const std::vector<double>& path) {
  const std::vector<double> r = cs::autocorrelation(path, 5);
  const cs::HurstEstimate vt = cs::hurst_variance_time(path);
  const cs::HurstEstimate rs = cs::hurst_rescaled_range(path);
  std::printf(
      "%-22s mean=%8.1f  stddev=%7.1f  r(1)=%6.3f  H_vt=%5.3f  H_rs=%5.3f\n",
      name.c_str(), cs::sample_mean(path),
      std::sqrt(cs::sample_variance(path)), r[1], vt.hurst, rs.hurst);
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig2_sample_paths"), {"frames"});
  bench::banner("Figure 2: sample paths of Z^0.7 vs matched DAR(1), N = 10");

  const std::size_t frames =
      static_cast<std::size_t>(flags.get_int("frames", 65536));
  const cf::ModelSpec z = cf::make_za(0.7);
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.7, 1);

  const std::vector<double> z_path = aggregate_path(z, 10, frames, 42);
  const std::vector<double> d_path = aggregate_path(dar, 10, frames, 42);

  std::printf("per-frame aggregate cell counts (10 sources):\n\n");
  describe("Z^0.7 (LRD)", z_path);
  describe("matched DAR(1) (SRD)", d_path);

  // Coarse 48-bucket rendering of the first 1920 frames, like the figure.
  std::printf("\ncoarse sample path (mean over 40-frame bins, first %d "
              "frames):\n\n", 48 * 40);
  cu::TextTable table({"bin", "Z^0.7", "DAR(1)"});
  cu::CsvWriter csv({"bin", "z", "dar"});
  for (int bin = 0; bin < 48; ++bin) {
    double zm = 0.0, dm = 0.0;
    for (int i = 0; i < 40; ++i) {
      zm += z_path[static_cast<std::size_t>(bin * 40 + i)];
      dm += d_path[static_cast<std::size_t>(bin * 40 + i)];
    }
    table.add_row({cu::format_int(bin), cu::format_fixed(zm / 40.0, 0),
                   cu::format_fixed(dm / 40.0, 0)});
    csv.add_row({cu::format_int(bin), cu::format_fixed(zm / 40.0, 2),
                 cu::format_fixed(dm / 40.0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: matching mean/stddev/r(1); H ~ 0.5 for DAR(1), "
      "H >> 0.5 for Z^0.7\n(low-frequency swells visible only in the Z "
      "column).\n");

  bench::maybe_write_csv(flags, csv, "fig2.csv");
  return 0;
}
