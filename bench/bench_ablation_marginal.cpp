// Ablation (Section 6.1): effect of the frame-size MARGINAL on cell loss.
//
// The paper pins all models to one Gaussian marginal and argues (6.1) that
// heavier-tailed marginals with the same mean/variance would not change the
// conclusions once bandwidth is dimensioned for them.  This ablation runs
// the same DAR(1) correlation structure under (a) the Gaussian marginal and
// (b) a negative binomial marginal (Heyman & Lakshman's choice) with
// identical moments, and prints simulated CLR side by side.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("ablation_marginal"));
  bench::banner(
      "Ablation: Gaussian vs negative-binomial marginal (same moments, "
      "same DAR(1) correlations)");
  cu::CsvWriter csv({"buffer_ms", "marginal", "clr"});

  cm::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 520.0;  // utilisation where CLRs resolve quickly
  g.Ts = 0.04;
  const cm::ReplicationConfig scale = bench::bench_scale();
  const std::vector<double> grid = {1e-6, 2.0, 6.0, 12.0, 20.0};

  const cf::ModelSpec gauss = cf::make_dar_matched_to_za(0.975, 1);
  const cf::ModelSpec negbin = cf::make_dar_negbinom(0.975, 1);

  const cm::SimulatedCurve cg =
      cm::simulated_clr_curve(gauss, g, grid, scale);
  const cm::SimulatedCurve cn =
      cm::simulated_clr_curve(negbin, g, grid, scale);

  cu::TextTable table({"B (msec)", "log10 CLR gaussian", "log10 CLR negbinom",
                       "gap (decades)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double lg = cg.clr[i] > 0 ? std::log10(cg.clr[i]) : -99;
    const double ln = cn.clr[i] > 0 ? std::log10(cn.clr[i]) : -99;
    table.add_row({cu::format_fixed(grid[i], 1),
                   bench::log10_or_floor(cg.clr[i]),
                   bench::log10_or_floor(cn.clr[i]),
                   (lg > -99 && ln > -99) ? cu::format_fixed(ln - lg, 2)
                                          : "-"});
    csv.add_row({cu::format_fixed(grid[i], 2), "gaussian",
                 cu::format_sci(cg.clr[i], 4)});
    csv.add_row({cu::format_fixed(grid[i], 2), "negbinom",
                 cu::format_sci(cn.clr[i], 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: identical CLR at B = 0 (matched moments); the NB "
      "tail lifts the CLR by a gap that grows\nwith buffer but stays ~1 "
      "decade inside the practical box -- small against the 6+ decades the "
      "correlation\nstructure moves (Fig. 5b), supporting Section 6.1's "
      "argument that re-dimensioning bandwidth for the\nheavier marginal "
      "restores the paper's conclusions.\n");
  bench::maybe_write_csv(flags, csv, "ablation_marginal.csv");
  return 0;
}
