// Figure 4: the Critical Time Scale m*_b versus total buffer size.
//   (a) V^v family  -- same short-term correlations => same CTS
//   (b) Z^a family  -- different short-term correlations => spread CTS
// Geometry: c = 526, mu = 500, N = 100 (as in the paper).

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const cm::MuxGeometry& g, const std::vector<double>& grid,
           cu::CsvWriter& csv, const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"B (msec)"};
  for (const auto& m : models) headers.push_back("m* " + m.name);
  cu::TextTable table(std::move(headers));

  std::vector<cm::AnalyticCurve> curves;
  for (const auto& m : models) curves.push_back(cm::cts_curve(m, g, grid));

  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {cu::format_fixed(grid[i], 1)};
    for (const auto& curve : curves) {
      row.push_back(
          cu::format_int(static_cast<long long>(curve.critical_m[i])));
      csv.add_row({panel_id, cu::format_fixed(grid[i], 3), curve.model,
                   cu::format_int(static_cast<long long>(curve.critical_m[i]))});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig4_cts"));
  bench::banner("Figure 4: Critical Time Scale m* vs total buffer "
                "(c = 526, N = 100)");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "critical_m"});

  const cm::MuxGeometry g = bench::paper_mux_100();
  const std::vector<double> grid = {0.5, 1.0, 2.0, 4.0,  6.0, 8.0,
                                    12.0, 16.0, 20.0, 25.0, 30.0};

  panel("(a) V^v: same short-term correlations",
        {cf::make_vv(0.67), cf::make_vv(1.0), cf::make_vv(1.5)}, g, grid,
        csv, "a");
  panel("(b) Z^a: same long-term correlations",
        {cf::make_za(0.7), cf::make_za(0.9), cf::make_za(0.975),
         cf::make_za(0.99)},
        g, grid, csv, "b");

  std::printf(
      "expected shape: (a) columns nearly identical; (b) spread grows with "
      "a (>= ~15 lags already at 2 ms);\nall columns non-decreasing, small "
      "at small B.\n");
  bench::maybe_write_csv(flags, csv, "fig4.csv");
  return 0;
}
