// Regenerates Table 1: model parameters of V^v, Z^a, S and L, all derived
// by our fitting code from the common marginal N(500, 5000) at 25 frames/s.
//
// Paper reference values:
//   V^0.67: a=0.7998, lambda=5000,  T0=3.48ms, M=15
//   V^1:    a=0.8,    lambda=6250,  T0=3.48ms, M=15
//   V^1.5:  a=0.8004, lambda=7500,  T0=3.48ms, M=15
//   Z^a:    v=1, alpha=0.8, lambda=6250, T0=2.57ms, M=15
//   L:      alpha=0.72, lambda=12500, T0=1.83ms, M=30
//   S(Z^0.7):   DAR(1) rho=0.68; DAR(2) rho=0.72 (0.84,0.16);
//               DAR(3) rho=0.73 (0.82,0.10,0.08)
//   S(Z^0.975): DAR(1) rho=0.82; DAR(2) rho=0.87 (0.70,0.30);
//               DAR(3) rho=0.89 (0.63,0.18,0.19)

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("table1"));
  bench::banner("Table 1: model parameters of V^v, Z^a, S and L");

  cu::TextTable mixtures({"model", "v", "alpha", "a (DAR1)", "lambda (c/s)",
                          "T0 (msec)", "M"});
  cu::CsvWriter csv({"model", "v", "alpha", "a", "lambda", "t0_msec", "M"});

  auto add_mixture = [&](const std::string& name,
                         const cf::MixtureReport& r) {
    mixtures.add_row({name, cu::format_fixed(r.v, 2),
                      cu::format_fixed(r.alpha, 3),
                      r.a > 0.0 ? cu::format_fixed(r.a, 6) : "-",
                      cu::format_fixed(r.lambda, 1),
                      cu::format_fixed(r.t0_msec, 2),
                      cu::format_int(static_cast<long long>(r.M))});
    csv.add_row({name, cu::format_fixed(r.v, 4), cu::format_fixed(r.alpha, 4),
                 cu::format_fixed(r.a, 6), cu::format_fixed(r.lambda, 2),
                 cu::format_fixed(r.t0_msec, 4),
                 cu::format_int(static_cast<long long>(r.M))});
  };

  for (const double v : {0.67, 1.0, 1.5}) {
    add_mixture("V^" + cu::format_fixed(v, 2), cf::report_vv(v));
  }
  add_mixture("Z^a (any a)", cf::report_za(0.9));
  add_mixture("L", cf::report_l());
  std::printf("%s\n", mixtures.render().c_str());

  std::printf("S = DAR(p) fitted to the first p correlations of Z^a:\n\n");
  cu::TextTable s({"target", "p", "rho", "a_1", "a_2", "a_3", "residual"});
  for (const double a : {0.7, 0.975}) {
    for (const std::size_t p : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      const cf::DarFit fit = cf::report_dar_fit(a, p);
      s.add_row({"Z^" + cu::format_fixed(a, 3),
                 cu::format_int(static_cast<long long>(p)),
                 cu::format_fixed(fit.rho, 3),
                 cu::format_fixed(fit.lag_probs[0], 3),
                 p >= 2 ? cu::format_fixed(fit.lag_probs[1], 3) : "-",
                 p >= 3 ? cu::format_fixed(fit.lag_probs[2], 3) : "-",
                 cu::format_sci(fit.residual, 1)});
    }
  }
  std::printf("%s\n", s.render().c_str());
  std::printf(
      "paper check: Z^0.7 -> rho = 0.68/0.72/0.73; "
      "Z^0.975 -> rho = 0.82/0.87/0.89\n");

  bench::maybe_write_csv(flags, csv, "table1.csv");
  return 0;
}
