// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one table or figure of Ryu & Elwalid
// (SIGCOMM '96) and prints it as an aligned text table; a CSV mirror is
// written next to the binary when --csv=<path> is passed.  Simulation
// benches run at a CI-friendly default scale; REPRO_FULL=1 switches to the
// paper's 60 x 500k-frame scale (REPRO_REPS / REPRO_FRAMES override
// individually).

// Observability (see the "Observability" and "Benchmarking" sections of
// README.md): every bench accepts --trace=<path> (Chrome-trace span
// timeline), --metrics=<path> (JSON run report: config echo + all registry
// metrics), --perf=<path> (cts.perf.v1 report: getrusage, hardware
// counters when permitted, per-phase span self-time table — the file
// tools/cts_benchd aggregates into BENCH_*.json), --profile=<path>
// (cts.profile.v1 span-stack sampling profile; --profile-folded,
// --profile-hz and --profile-backend tune it), --quiet (suppress the
// stderr progress line; CTS_QUIET=1 equivalent) and --help, via the
// ObsGuard each main() constructs right after flag parsing.

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/obs/perf.hpp"
#include "cts/obs/profiler.hpp"
#include "cts/obs/progress.hpp"
#include "cts/obs/run_report.hpp"
#include "cts/obs/span_stats.hpp"
#include "cts/obs/trace.hpp"
#include "cts/sim/curves.hpp"
#include "cts/sim/replication.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/csv.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace bench {

/// The Fig. 5-10 multiplexer: N = 30 sources, c = 538 cells/frame.
inline cts::sim::MuxGeometry paper_mux_30() {
  cts::sim::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 538.0;
  g.Ts = 0.04;
  return g;
}

/// A reduced-utilisation variant (c = 520) of the Fig. 5-10 multiplexer:
/// at CI simulation scale the paper's own operating point (c = 538) pushes
/// buffered CLRs below the measurement floor, while at c = 520 every curve
/// resolves.  The paper notes (Section 5.5) that other choices of N and c
/// give qualitatively identical results.
inline cts::sim::MuxGeometry validation_mux_30() {
  cts::sim::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 520.0;
  g.Ts = 0.04;
  return g;
}

/// The Fig. 4 geometry: N = 100 sources, c = 526 cells/frame.
inline cts::sim::MuxGeometry paper_mux_100() {
  cts::sim::MuxGeometry g;
  g.n_sources = 100;
  g.bandwidth_per_source = 526.0;
  g.Ts = 0.04;
  return g;
}

/// Simulation scale: bench default (fast) with environment overrides.
inline cts::sim::ReplicationConfig bench_scale() {
  cts::sim::ReplicationConfig config = cts::sim::default_scale();
  config.replications = 4;
  config.frames_per_replication = 20000;
  config.warmup_frames = 1000;
  return cts::sim::apply_env_overrides(config);
}

/// Per-bench observability harness.  Construct one right after parsing
/// Flags; it (a) handles --help (prints the known-flag list and exits 0)
/// and warns about unrecognised --flags with a did-you-mean suggestion,
/// (b) enables span recording when --trace or --perf was passed,
/// (c) honours --quiet, (d) arms the resource probe / hardware counters
/// for --perf, and (e) on destruction writes the --metrics run report,
/// the --trace file and the --perf report.
class ObsGuard {
 public:
  /// Preferred constructor: a registered bench (see bench_suite.hpp);
  /// kind/title are echoed into the run and perf reports.
  ObsGuard(const cts::util::Flags& flags, const BenchSpec& spec,
           std::vector<std::string> extra_known = {})
      : ObsGuard(flags, spec.id, std::move(extra_known)) {
    kind_ = spec.kind;
    title_ = spec.title;
  }

  ObsGuard(const cts::util::Flags& flags, std::string run_id,
           std::vector<std::string> extra_known = {})
      : flags_(flags), run_id_(std::move(run_id)) {
    // The shared flag surface comes from the CLI registry so the benches,
    // --help, and docs/cli.md can never disagree about what exists.
    std::vector<std::string> known =
        cts::util::cli::flag_names(cts::util::cli::kBenchSharedFlags);
    known.insert(known.end(), extra_known.begin(), extra_known.end());
    if (flags_.get_bool("help", false)) {
      print_help(extra_known);
      std::exit(0);
    }
    flags_.warn_unknown(std::cerr, known);
    if (flags_.get_bool("quiet", false)) cts::obs::force_quiet(true);
    if (flags_.has("shard") || flags_.has("shard-out")) {
      // --shard=I/N routes through the REPRO_SHARD environment override so
      // every bench_scale() call in the bench body picks it up; --shard-out
      // (default <run_id>_shard.json) arms the global ShardRecorder, which
      // run_replicated feeds and write_reports() drains into a cts.shard.v1
      // file.  --shard-out alone records a degenerate 0/1 "shard" — the
      // single-process reference file the merge tests diff against.
      if (flags_.has("shard")) {
        const std::string spec_text = flags_.get_string("shard", "0/1");
        try {
          (void)cts::sim::parse_shard_spec(spec_text);
        } catch (const cts::util::InvalidArgument& e) {
          std::fprintf(stderr, "%s: --shard: %s\n", run_id_.c_str(), e.what());
          std::exit(2);
        }
        ::setenv("REPRO_SHARD", spec_text.c_str(), 1);
      }
      shard_path_ = flags_.get_string("shard-out", run_id_ + "_shard.json");
      cts::sim::ShardRecorder::global().enable(shard_path_);
    }
    if (flags_.has("trace")) {
      trace_path_ = flags_.get_string("trace", run_id_ + "_trace.json");
      cts::obs::TraceRecorder::global().enable();
    }
    if (flags_.has("metrics")) {
      metrics_path_ = flags_.get_string("metrics", run_id_ + "_metrics.json");
    }
    if (flags_.has("perf")) {
      perf_path_ = flags_.get_string("perf", run_id_ + "_perf.json");
      // Span self-time attribution needs the recorder even without --trace.
      cts::obs::TraceRecorder::global().enable();
      probe_.emplace();
      counters_ = std::make_unique<cts::obs::PerfCounterGroup>();
      counters_->start();
    }
    if (flags_.has("profile") || flags_.has("profile-folded")) {
      if (flags_.has("profile")) {
        profile_path_ =
            flags_.get_string("profile", run_id_ + "_profile.json");
      }
      if (flags_.has("profile-folded")) {
        profile_folded_path_ =
            flags_.get_string("profile-folded", run_id_ + "_profile.folded");
      }
      cts::obs::Profiler::Options popts;
      popts.hz = static_cast<int>(flags_.get_int("profile-hz", 97));
      popts.backend = flags_.get_string("profile-backend", "thread");
      try {
        cts::obs::Profiler::global().start(popts);
      } catch (const cts::util::InvalidArgument& e) {
        std::fprintf(stderr, "%s: --profile: %s\n", run_id_.c_str(),
                     e.what());
        std::exit(2);
      }
    }
    main_start_us_ = cts::obs::TraceRecorder::global().now_us();
  }

  ~ObsGuard() {
    try {
      write_reports();
    } catch (...) {
      // Report writing must never turn a successful bench into a failure.
    }
  }

  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

 private:
  void print_help(const std::vector<std::string>& extra_known) const {
    std::printf("usage: %s [--flag[=value] ...]\n\n", run_id_.c_str());
    std::printf("shared flags:\n");
    for (const cts::util::cli::FlagDoc& flag :
         cts::util::cli::kBenchSharedFlags) {
      std::string name = std::string("--") + flag.name;
      if (flag.value_hint[0] != '\0') {
        name += std::string("=") + flag.value_hint;
      }
      std::printf("  %-18s %s\n", name.c_str(), flag.doc);
    }
    if (!extra_known.empty()) {
      std::printf("bench flags:\n");
      for (const std::string& key : extra_known) {
        std::printf("  --%s\n", key.c_str());
      }
    }
    std::printf("environment:");
    for (const cts::util::cli::EnvDoc& env : cts::util::cli::kEnvVars) {
      std::printf(" %s", env.name);
    }
    std::printf(" (see docs/cli.md)\n");
  }

  void write_reports() {
    cts::obs::TraceRecorder& recorder = cts::obs::TraceRecorder::global();
    if (recorder.enabled()) {
      // Root span covering the bench body, so every bench — including the
      // purely analytic ones — has a phase table with at least "bench".
      recorder.record("bench.main", main_start_us_,
                      recorder.now_us() - main_start_us_);
    }
    if (!metrics_path_.empty()) {
      cts::obs::RunReport report;
      report.set("run_id", run_id_);
      if (!kind_.empty()) report.set("bench_kind", kind_);
      if (!title_.empty()) report.set("bench_title", title_);
      report.set("repro_full", cts::util::env_flag("REPRO_FULL"));
      const cts::sim::ReplicationConfig scale = bench_scale_echo();
      report.set("replications", static_cast<std::uint64_t>(scale.replications));
      report.set("frames_per_replication", scale.frames_per_replication);
      report.set("warmup_frames", scale.warmup_frames);
      // An exact uint64 echo: the registry's master_seed_hi/lo gauges carry
      // the same value for consumers that only see the metrics section.
      report.set("master_seed", scale.master_seed);
      if (scale.shard_count > 1) {
        report.set("shard", cts::sim::format_shard_spec(
                                {scale.shard_index, scale.shard_count}));
      }
      report.set("hardware_concurrency",
                 static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
      if (report.write(metrics_path_)) {
        std::printf("[metrics written to %s]\n", metrics_path_.c_str());
      } else {
        std::printf("[warning: could not write metrics to %s]\n",
                    metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      if (cts::obs::TraceRecorder::global().write(trace_path_)) {
        std::printf("[trace written to %s (%zu spans)]\n", trace_path_.c_str(),
                    cts::obs::TraceRecorder::global().event_count());
      } else {
        std::printf("[warning: could not write trace to %s]\n",
                    trace_path_.c_str());
      }
    }
    if (!shard_path_.empty()) {
      cts::sim::ShardRecorder& shards = cts::sim::ShardRecorder::global();
      if (shards.write()) {
        std::printf("[shard file written to %s]\n", shard_path_.c_str());
      } else {
        std::printf("[warning: could not write shard file to %s]\n",
                    shard_path_.c_str());
      }
      shards.disable();
    }
    if (!perf_path_.empty()) {
      cts::obs::PerfReport report;
      report.info.emplace_back("run_id", run_id_);
      if (!kind_.empty()) report.info.emplace_back("bench_kind", kind_);
      if (!title_.empty()) report.info.emplace_back("bench_title", title_);
      report.resources = probe_->sample();
      report.hw = counters_->stop();
      report.spans = cts::obs::aggregate_spans(recorder.events());
      if (report.write(perf_path_)) {
        std::printf("[perf report written to %s]\n", perf_path_.c_str());
      } else {
        std::printf("[warning: could not write perf report to %s]\n",
                    perf_path_.c_str());
      }
    }
    if (!profile_path_.empty() || !profile_folded_path_.empty()) {
      cts::obs::Profiler& prof = cts::obs::Profiler::global();
      prof.stop();
      if (!profile_path_.empty()) {
        if (prof.write(profile_path_)) {
          std::printf("[profile written to %s (%llu samples)]\n",
                      profile_path_.c_str(),
                      static_cast<unsigned long long>(prof.sample_count()));
        } else {
          std::printf("[warning: could not write profile to %s]\n",
                      profile_path_.c_str());
        }
      }
      if (!profile_folded_path_.empty()) {
        if (prof.write_folded_file(profile_folded_path_)) {
          std::printf("[folded profile written to %s]\n",
                      profile_folded_path_.c_str());
        } else {
          std::printf("[warning: could not write folded profile to %s]\n",
                      profile_folded_path_.c_str());
        }
      }
    }
  }

  /// The env-resolved scale the simulation benches run at, echoed into the
  /// report so two runs can be diffed for comparability first.
  static cts::sim::ReplicationConfig bench_scale_echo();

  const cts::util::Flags& flags_;
  std::string run_id_;
  std::string kind_;
  std::string title_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string perf_path_;
  std::string shard_path_;
  std::string profile_path_;
  std::string profile_folded_path_;
  std::int64_t main_start_us_ = 0;
  std::optional<cts::obs::ResourceProbe> probe_;
  std::unique_ptr<cts::obs::PerfCounterGroup> counters_;
};

inline cts::sim::ReplicationConfig ObsGuard::bench_scale_echo() {
  return bench_scale();
}

/// Prints the shard-slice note under the scale line when the resolved
/// scale is sharded (--shard / REPRO_SHARD), so a worker's log says which
/// global replications it actually ran.
inline void shard_note(const cts::sim::ReplicationConfig& scale) {
  if (scale.shard_count <= 1) return;
  const std::size_t lo =
      scale.replications * scale.shard_index / scale.shard_count;
  const std::size_t hi =
      scale.replications * (scale.shard_index + 1) / scale.shard_count;
  std::printf("[shard %zu/%zu: global replications [%zu, %zu)]\n",
              scale.shard_index, scale.shard_count, lo, hi);
}

/// Prints the standard bench banner (figure id + scale note).
inline void banner(const std::string& what) {
  std::printf("==================================================\n");
  std::printf("%s\n", what.c_str());
  if (cts::util::env_flag("REPRO_FULL")) {
    std::printf("[scale: PAPER (REPRO_FULL=1): 60 reps x 500k frames]\n");
  }
  std::printf("==================================================\n");
}

/// Optionally mirrors a rendered table to CSV when --csv was passed.
inline void maybe_write_csv(const cts::util::Flags& flags,
                            const cts::util::CsvWriter& csv,
                            const std::string& default_name) {
  if (!flags.has("csv")) return;
  const std::string path = flags.get_string("csv", default_name);
  if (csv.write(path)) {
    std::printf("[csv written to %s]\n", path.c_str());
  } else {
    std::printf("[warning: could not write csv to %s]\n", path.c_str());
  }
}

/// log10 formatting that tolerates zero CLR estimates ("<floor" marker).
inline std::string log10_or_floor(double p) {
  if (p <= 0.0) return "-inf";
  return cts::util::format_fixed(std::log10(p), 3);
}

}  // namespace bench
