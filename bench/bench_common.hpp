// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one table or figure of Ryu & Elwalid
// (SIGCOMM '96) and prints it as an aligned text table; a CSV mirror is
// written next to the binary when --csv=<path> is passed.  Simulation
// benches run at a CI-friendly default scale; REPRO_FULL=1 switches to the
// paper's 60 x 500k-frame scale (REPRO_REPS / REPRO_FRAMES override
// individually).

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/curves.hpp"
#include "cts/sim/replication.hpp"
#include "cts/util/csv.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace bench {

/// The Fig. 5-10 multiplexer: N = 30 sources, c = 538 cells/frame.
inline cts::sim::MuxGeometry paper_mux_30() {
  cts::sim::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 538.0;
  g.Ts = 0.04;
  return g;
}

/// A reduced-utilisation variant (c = 520) of the Fig. 5-10 multiplexer:
/// at CI simulation scale the paper's own operating point (c = 538) pushes
/// buffered CLRs below the measurement floor, while at c = 520 every curve
/// resolves.  The paper notes (Section 5.5) that other choices of N and c
/// give qualitatively identical results.
inline cts::sim::MuxGeometry validation_mux_30() {
  cts::sim::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 520.0;
  g.Ts = 0.04;
  return g;
}

/// The Fig. 4 geometry: N = 100 sources, c = 526 cells/frame.
inline cts::sim::MuxGeometry paper_mux_100() {
  cts::sim::MuxGeometry g;
  g.n_sources = 100;
  g.bandwidth_per_source = 526.0;
  g.Ts = 0.04;
  return g;
}

/// Simulation scale: bench default (fast) with environment overrides.
inline cts::sim::ReplicationConfig bench_scale() {
  cts::sim::ReplicationConfig config = cts::sim::default_scale();
  config.replications = 4;
  config.frames_per_replication = 20000;
  config.warmup_frames = 1000;
  return cts::sim::apply_env_overrides(config);
}

/// Prints the standard bench banner (figure id + scale note).
inline void banner(const std::string& what) {
  std::printf("==================================================\n");
  std::printf("%s\n", what.c_str());
  if (cts::util::env_flag("REPRO_FULL")) {
    std::printf("[scale: PAPER (REPRO_FULL=1): 60 reps x 500k frames]\n");
  }
  std::printf("==================================================\n");
}

/// Optionally mirrors a rendered table to CSV when --csv was passed.
inline void maybe_write_csv(const cts::util::Flags& flags,
                            const cts::util::CsvWriter& csv,
                            const std::string& default_name) {
  if (!flags.has("csv")) return;
  const std::string path = flags.get_string("csv", default_name);
  if (csv.write(path)) {
    std::printf("[csv written to %s]\n", path.c_str());
  } else {
    std::printf("[warning: could not write csv to %s]\n", path.c_str());
  }
}

/// log10 formatting that tolerates zero CLR estimates ("<floor" marker).
inline std::string log10_or_floor(double p) {
  if (p <= 0.0) return "-inf";
  return cts::util::format_fixed(std::log10(p), 3);
}

}  // namespace bench
