// Ablation (extension): does the CTS story survive OTHER LRD model
// classes?
//
// The paper works with the exact-LRD FBNDP family.  Here the same CTS /
// B-R analysis runs over three structurally different LRD processes with
// the common marginal moments and comparable Hurst parameters:
//
//   * FBNDP mixture Z^0.9 (exact LRD, H = 0.9)
//   * F-ARIMA(0, d, 0) with d = 0.4 (asymptotic LRD, H = 0.9)
//   * M/G/infinity with beta = 1.2 (hyperbolic-decay class, H = 0.9)
//
// If the paper's argument is model-robust, all three must show finite,
// small, buffer-linear CTS and (with short-term structure matched) similar
// BOP in the practical box -- and they do.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("ablation_lrd_models"));
  bench::banner(
      "Ablation: CTS and B-R BOP across LRD model classes (all H = 0.9, "
      "common moments; N = 30, c = 538)");
  cu::CsvWriter csv({"buffer_ms", "model", "critical_m", "log10_bop"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const std::vector<double> grid = {0.5, 2.0, 8.0, 30.0, 120.0};

  const std::vector<cf::ModelSpec> models = {
      cf::make_za(0.9), cf::make_farima(0.4), cf::make_mginf(1.2)};

  std::vector<cm::AnalyticCurve> curves;
  for (const auto& m : models) curves.push_back(cm::br_curve(m, g, grid));

  cu::TextTable table({"B (msec)", "m* Z^0.9", "m* FARIMA", "m* MGinf",
                       "log10 Z^0.9", "log10 FARIMA", "log10 MGinf"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row(
        {cu::format_fixed(grid[i], 1),
         cu::format_int(static_cast<long long>(curves[0].critical_m[i])),
         cu::format_int(static_cast<long long>(curves[1].critical_m[i])),
         cu::format_int(static_cast<long long>(curves[2].critical_m[i])),
         cu::format_fixed(curves[0].log10_bop[i], 2),
         cu::format_fixed(curves[1].log10_bop[i], 2),
         cu::format_fixed(curves[2].log10_bop[i], 2)});
    for (std::size_t m = 0; m < models.size(); ++m) {
      csv.add_row({cu::format_fixed(grid[i], 2), curves[m].model,
                   cu::format_int(
                       static_cast<long long>(curves[m].critical_m[i])),
                   cu::format_fixed(curves[m].log10_bop[i], 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: every column shows finite, small-at-small-B,\n"
      "non-decreasing CTS; absolute BOP levels differ (different short-term "
      "structure) but no model\nescapes the finite-CTS argument -- the "
      "paper's conclusion is not an artifact of the FBNDP class.\n");
  bench::maybe_write_csv(flags, csv, "ablation_lrd_models.csv");
  return 0;
}
