// Registry of the figure/table/ablation/service benches: one BenchSpec per
// binary, shared by the bench mains themselves (which echo their spec into
// run/perf reports via ObsGuard) and by tools/cts_benchd (which uses it to
// select and launch suites).
//
// Suites:
//   smoke    - fast subset (analytic + short simulations) for CI and the
//              committed BENCH_*.json perf baseline
//   sim      - every bench that runs the replicated fluid/cell simulators
//   analytic - closed-form benches only (no simulation)
//   full     - everything
//
// The micro benches (bench_micro_*) are Google-Benchmark binaries with
// their own repetition machinery and are deliberately not part of this
// registry.

#pragma once

#include <cstddef>
#include <string>

#include "cts/util/error.hpp"

namespace bench {

struct BenchSpec {
  const char* id;      ///< run id, e.g. "fig8_sim_clr"
  const char* binary;  ///< executable name, e.g. "bench_fig8_sim_clr"
  const char* kind;    ///< "analytic" | "sim"
  bool smoke;          ///< member of the smoke suite
  const char* title;   ///< one-line description (from EXPERIMENTS.md)
};

inline constexpr BenchSpec kSuite[] = {
    {"table1", "bench_table1", "analytic", true,
     "Table 1: fitted model parameters"},
    {"fig1_acf_concept", "bench_fig1_acf_concept", "analytic", false,
     "Figure 1: conceptual ACF knobs"},
    {"fig2_sample_paths", "bench_fig2_sample_paths", "sim", true,
     "Figure 2: generated sample paths"},
    {"fig3_acf", "bench_fig3_acf", "analytic", false,
     "Figure 3: analytic ACFs of the fitted models"},
    {"fig4_cts", "bench_fig4_cts", "analytic", false,
     "Figure 4: critical time scale (N=100, c=526)"},
    {"fig5_bop", "bench_fig5_bop", "analytic", true,
     "Figure 5: Bahadur-Rao BOPs of V^v and Z^a"},
    {"fig6_markov_efficacy", "bench_fig6_markov_efficacy", "analytic", false,
     "Figure 6: Markov efficacy (analytic)"},
    {"fig7_wide_range", "bench_fig7_wide_range", "sim", true,
     "Figure 7: BOPs over a wide buffer range"},
    {"fig8_sim_clr", "bench_fig8_sim_clr", "sim", false,
     "Figure 8: simulated CLRs of V^v and Z^a"},
    {"fig9_sim_markov", "bench_fig9_sim_markov", "sim", true,
     "Figure 9: simulated CLRs, Markov efficacy"},
    {"fig10_asymptotics", "bench_fig10_asymptotics", "analytic", false,
     "Figure 10: asymptotics vs simulation curves"},
    {"ablation_marginal", "bench_ablation_marginal", "analytic", false,
     "Ablation: marginal distribution choice"},
    {"ablation_cts_scan", "bench_ablation_cts_scan", "analytic", false,
     "Ablation: CTS scan over utilisation"},
    {"ablation_granularity", "bench_ablation_granularity", "sim", false,
     "Ablation: cell-level vs fluid granularity"},
    {"ablation_lrd_models", "bench_ablation_lrd_models", "analytic", false,
     "Ablation: LRD model family comparison"},
    {"ablation_cutoff", "bench_ablation_cutoff", "sim", false,
     "Ablation: correlation cutoff sensitivity"},
    {"cacd", "bench_cacd", "analytic", true,
     "Admission service: CAC query throughput, cold vs warm cache"},
    {"scan_sweep", "bench_scan_sweep", "analytic", true,
     "Scan sweep: warm-started, SIMD-dispatched CTS scans"},
};

inline constexpr std::size_t kSuiteSize = sizeof(kSuite) / sizeof(kSuite[0]);

/// Looks a bench up by id; throws util::InvalidArgument for an unknown id
/// so a renamed bench fails loudly at startup, not silently at report time.
inline const BenchSpec& spec(const std::string& id) {
  for (const BenchSpec& s : kSuite) {
    if (id == s.id) return s;
  }
  throw cts::util::InvalidArgument("bench_suite: unknown bench id '" + id +
                                   "'");
}

}  // namespace bench
