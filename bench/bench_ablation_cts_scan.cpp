// Ablation (design choice): exact integer CTS scan vs the closed-form
// approximations of the paper's appendix.
//
// DESIGN.md commits to an exact integer minimisation of the rate function;
// the appendix derives closed forms instead:  m* ~ H b/((1-H)(c-mu)) for
// exact-LRD sources (and the Weibull BOP of eq. 6 built on it), and
// m* ~ b/(c-mu) for AR(1)-like sources.  This ablation quantifies what the
// closed forms give up across the buffer range: CTS relative error and the
// log10-BOP error of eq. (6) vs the exact Bahadur-Rao value.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/weibull_lrd.hpp"
#include "cts/util/table.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("ablation_cts_scan"));
  bench::banner(
      "Ablation: exact CTS scan vs closed-form approximations (appendix)");
  cu::CsvWriter csv({"b_cells", "m_exact", "m_closed", "log10_br",
                     "log10_weibull"});

  const double hurst = 0.9;
  const double weight = 0.9;
  const double mean = 500.0;
  const double variance = 5000.0;
  const double c = 538.0;
  const std::size_t n = 30;

  auto acf = std::make_shared<cc::ExactLrdAcf>(hurst, weight);
  cc::RateFunction rate(acf, mean, variance, c);

  cc::WeibullLrdParams weibull;
  weibull.hurst = hurst;
  weibull.weight = weight;
  weibull.mean = mean;
  weibull.variance = variance;
  weibull.bandwidth = c;

  cu::TextTable table({"b/src (cells)", "m* exact", "m* closed-form",
                       "CTS err %", "log10 B-R", "log10 eq.(6)",
                       "BOP err (dec)"});
  for (const double b : {10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0,
                         10000.0}) {
    const cc::RateResult exact = rate.evaluate(b);
    const double closed = cc::weibull_critical_m(weibull, b);
    const double br = cc::br_log10_bop(rate, b, n).log10_bop;
    const double wb = cc::weibull_log10_bop(
        weibull, n, b * static_cast<double>(n));
    const double cts_err =
        100.0 * (closed - static_cast<double>(exact.critical_m)) /
        static_cast<double>(exact.critical_m);
    table.add_row({cu::format_fixed(b, 0),
                   cu::format_int(static_cast<long long>(exact.critical_m)),
                   cu::format_fixed(closed, 1), cu::format_fixed(cts_err, 1),
                   cu::format_fixed(br, 2), cu::format_fixed(wb, 2),
                   cu::format_fixed(wb - br, 2)});
    csv.add_row({cu::format_fixed(b, 1),
                 cu::format_int(static_cast<long long>(exact.critical_m)),
                 cu::format_fixed(closed, 2), cu::format_fixed(br, 4),
                 cu::format_fixed(wb, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  // The Markov closed form against an AR(1) ACF.
  auto geo = std::make_shared<cc::GeometricAcf>(0.9);
  cc::RateFunction geo_rate(geo, mean, variance, c);
  cu::TextTable table2({"b/src (cells)", "m* exact (AR1 a=0.9)",
                        "b/(c-mu)", "note"});
  for (const double b : {10.0, 100.0, 1000.0, 10000.0}) {
    const auto m = geo_rate.evaluate(b).critical_m;
    table2.add_row(
        {cu::format_fixed(b, 0),
         cu::format_int(static_cast<long long>(m)),
         cu::format_fixed(cc::markov_cts_slope(mean, c) * b, 1),
         m > 1 ? "" : "buffer below one-frame scale"});
  }
  std::printf("%s\n", table2.render().c_str());
  std::printf(
      "expected shape: closed forms converge to the exact scan as b grows "
      "(the asymptotic regime)\nbut misstate small-buffer CTS -- the exact "
      "integer scan is what the practical box needs.\n");
  bench::maybe_write_csv(flags, csv, "ablation_cts_scan.csv");
  return 0;
}
