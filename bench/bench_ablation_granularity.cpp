// Ablation (design choice): fluid frame-level recursion vs cell-granularity
// event simulation.
//
// Every headline simulation uses the fluid recursion (exact for
// deterministic smoothing with constant within-frame rates); this ablation
// validates that modelling choice against the 53-byte-granular simulator on
// a shared workload, at several buffer sizes and utilisations.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/proc/gaussian_quantizer.hpp"
#include "cts/sim/cell_mux.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

struct Comparison {
  double fluid_clr = 0.0;
  double cell_clr = 0.0;
};

Comparison compare(double capacity_per_source, double buffer_cells,
                   std::uint64_t frames, std::uint64_t seed) {
  const cf::ModelSpec model = cf::make_dar_matched_to_za(0.975, 1);
  const int n = 10;

  auto build_sources = [&]() {
    std::vector<std::unique_ptr<cp::FrameSource>> sources;
    for (int i = 0; i < n; ++i) {
      sources.push_back(std::make_unique<cp::GaussianQuantizer>(
          model.make_source(seed + static_cast<std::uint64_t>(i))));
    }
    return sources;
  };

  Comparison out;
  {
    auto sources = build_sources();
    cm::FluidRunConfig config;
    config.frames = frames;
    config.warmup_frames = 200;
    config.capacity_cells = n * capacity_per_source;
    config.buffer_sizes_cells = {buffer_cells};
    const cm::FluidRunResult r = cm::FluidMux::run(sources, config);
    out.fluid_clr = r.clr[0].clr(r.arrived_cells);
  }
  {
    auto sources = build_sources();
    cm::CellRunConfig config;
    config.frames = frames;
    config.warmup_frames = 200;
    config.capacity_cells =
        static_cast<std::uint64_t>(n * capacity_per_source);
    config.buffer_cells = static_cast<std::uint64_t>(buffer_cells);
    const cm::CellRunResult r = cm::CellMux::run(sources, config);
    out.cell_clr = r.clr();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("ablation_granularity"), {"frames"});
  bench::banner(
      "Ablation: fluid frame-level recursion vs 53-byte cell-granular "
      "simulation (DAR(1)~Z^0.975, N = 10, shared seeds)");
  cu::CsvWriter csv({"c_per_source", "buffer_cells", "fluid_clr",
                     "cell_clr"});
  const std::uint64_t frames =
      static_cast<std::uint64_t>(flags.get_int("frames", 15000));

  cu::TextTable table({"c/src", "buffer (cells)", "log10 fluid CLR",
                       "log10 cell CLR", "gap (dec)"});
  for (const double c : {515.0, 525.0}) {
    for (const double b : {200.0, 800.0, 2400.0}) {
      const Comparison cmp = compare(c, b, frames, 9000);
      const double lf =
          cmp.fluid_clr > 0 ? std::log10(cmp.fluid_clr) : -99.0;
      const double lc = cmp.cell_clr > 0 ? std::log10(cmp.cell_clr) : -99.0;
      table.add_row({cu::format_fixed(c, 0), cu::format_fixed(b, 0),
                     bench::log10_or_floor(cmp.fluid_clr),
                     bench::log10_or_floor(cmp.cell_clr),
                     (lf > -99 && lc > -99) ? cu::format_fixed(lc - lf, 2)
                                            : "-"});
      csv.add_row({cu::format_fixed(c, 1), cu::format_fixed(b, 1),
                   cu::format_sci(cmp.fluid_clr, 4),
                   cu::format_sci(cmp.cell_clr, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: the two columns agree within a fraction of a decade "
      "wherever both resolve;\nthe fluid recursion slightly underestimates "
      "loss (sub-frame jitter is smoothed away).\n");
  bench::maybe_write_csv(flags, csv, "ablation_granularity.csv");
  return 0;
}
