// Figure 8: SIMULATED cell loss rates (finite buffer) of V^v and Z^a,
// N = 30, c = 538.  The simulation verifies Fig. 5's analytic prediction:
// short-term correlations dominate the CLR; long-term correlations barely
// move it.  Paper scale is 60 reps x 500k frames (REPRO_FULL=1); the bench
// default is reduced for runtime.

#include <cstdio>

#include "bench_common.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/table.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

void panel(const std::string& title, const std::vector<cf::ModelSpec>& models,
           const cm::MuxGeometry& g, const std::vector<double>& grid,
           const cm::ReplicationConfig& scale, cu::CsvWriter& csv,
           const std::string& panel_id) {
  std::printf("%s\n\n", title.c_str());
  std::vector<std::string> headers = {"B (msec)"};
  for (const auto& m : models) headers.push_back("log10 " + m.name);
  cu::TextTable table(std::move(headers));

  std::vector<cm::SimulatedCurve> curves;
  for (const auto& m : models) {
    curves.push_back(cm::simulated_clr_curve(m, g, grid, scale));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {cu::format_fixed(grid[i], 1)};
    for (const auto& curve : curves) {
      row.push_back(bench::log10_or_floor(curve.clr[i]));
      csv.add_row({panel_id, cu::format_fixed(grid[i], 3), curve.model,
                   cu::format_sci(curve.clr[i], 4)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const cu::Flags flags(argc, argv);
  const bench::ObsGuard obs(flags, bench::spec("fig8_sim_clr"));
  bench::banner(
      "Figure 8: simulated CLRs of V^v and Z^a (N = 30, c = 538)");
  cu::CsvWriter csv({"panel", "buffer_ms", "model", "clr"});

  const cm::MuxGeometry g = bench::paper_mux_30();
  const cm::ReplicationConfig scale = bench::bench_scale();
  std::printf("[scale: %zu reps x %llu frames]\n", scale.replications,
              static_cast<unsigned long long>(scale.frames_per_replication));
  bench::shard_note(scale);
  std::printf("\n");
  const std::vector<double> grid = {1e-6, 2.0, 4.0, 8.0, 16.0, 30.0};

  // The V^v family's ON/OFF transition rate grows steeply with v (A ~
  // R^{-10} at alpha = 0.9): V^1.5 costs ~25x a Z source per frame.  The
  // default scale for panel (a) is therefore reduced; REPRO_FULL removes
  // the reduction along with everything else.
  cm::ReplicationConfig v_scale = scale;
  if (!cts::util::env_flag("REPRO_FULL")) {
    v_scale.replications = std::min<std::size_t>(v_scale.replications, 2);
    v_scale.frames_per_replication =
        std::min<std::uint64_t>(v_scale.frames_per_replication, 5000);
  }
  panel("(a) V^v", {cf::make_vv(0.67), cf::make_vv(1.0), cf::make_vv(1.5)},
        g, grid, v_scale, csv, "a");
  panel("(b) Z^a",
        {cf::make_za(0.7), cf::make_za(0.9), cf::make_za(0.975),
         cf::make_za(0.99)},
        g, grid, scale, csv, "b");

  std::printf(
      "expected shape: all curves start near log10 ~ -5 at B = 0 (identical "
      "marginals);\n(a) stays bundled, (b) fans out by orders of "
      "magnitude.\n");

  if (!cts::util::env_flag("REPRO_FULL")) {
    // At CI scale the buffered CLRs at c = 538 sit below the measurement
    // floor; rerun the Z panel at reduced utilisation where every point
    // resolves (Section 5.5: other N, c choices are qualitatively
    // identical).
    std::printf(
        "\n-- CI validation panel: same experiment at c = 520 (resolvable "
        "at this scale) --\n\n");
    const cm::MuxGeometry gv = bench::validation_mux_30();
    const std::vector<double> vgrid = {1e-6, 2.0, 6.0, 12.0, 20.0};
    panel("(a') V^v at c = 520",
          {cf::make_vv(0.67), cf::make_vv(1.0)}, gv, vgrid, v_scale, csv,
          "a_ci");
    panel("(b') Z^a at c = 520",
          {cf::make_za(0.7), cf::make_za(0.9), cf::make_za(0.975),
           cf::make_za(0.99)},
          gv, vgrid, scale, csv, "b_ci");
  }
  bench::maybe_write_csv(flags, csv, "fig8.csv");
  return 0;
}
