// CTS explorer: interactively sweep the knobs of the Critical Time Scale.
//
// For a chosen correlation structure this prints how m*_b responds to
// buffer size, utilisation (via per-source bandwidth), and the Hurst
// parameter -- making the paper's scaling laws tangible:
//
//   Markov:  m* ~ b / (c - mu)
//   LRD:     m* ~ H b / ((1 - H)(c - mu))
//
// It also demonstrates the GoP extension: periodic MPEG-like modulation on
// top of an LRD source, and what it does to short-lag correlations and CTS.
//
// Run: ./example_cts_explorer [--hurst=0.9] [--bandwidth=538]

#include <cstdio>
#include <memory>

#include "cts/core/rate_function.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/proc/gop.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/flags.hpp"

int main(int argc, char** argv) {
  const cts::util::Flags flags(argc, argv);
  const double hurst = flags.get_double("hurst", 0.9);
  const double c = flags.get_double("bandwidth", 538.0);
  const double mu = 500.0;
  const double sigma2 = 5000.0;

  std::printf("== CTS vs buffer (mu=%.0f, sigma^2=%.0f, c=%.0f) ==\n\n", mu,
              sigma2, c);
  auto lrd = std::make_shared<cts::core::ExactLrdAcf>(hurst, 0.9);
  auto markov = std::make_shared<cts::core::GeometricAcf>(0.9);
  cts::core::RateFunction lrd_rate(lrd, mu, sigma2, c);
  cts::core::RateFunction markov_rate(markov, mu, sigma2, c);

  std::printf("%-12s %-16s %-16s %-16s %s\n", "b (cells)", "m* LRD",
              "H b/((1-H)(c-mu))", "m* geometric", "b/(c-mu)");
  for (const double b : {0.0, 50.0, 200.0, 800.0, 3200.0}) {
    std::printf("%-12.0f %-16zu %-16.1f %-16zu %.1f\n", b,
                lrd_rate.evaluate(b).critical_m,
                cts::core::lrd_cts_slope(hurst, mu, c) * b,
                markov_rate.evaluate(b).critical_m,
                cts::core::markov_cts_slope(mu, c) * b);
  }

  std::printf("\n== CTS vs Hurst parameter (b = 800 cells) ==\n\n");
  std::printf("%-8s %-10s %s\n", "H", "m*", "I(c,b)");
  for (const double h : {0.55, 0.7, 0.8, 0.9, 0.95}) {
    auto acf = std::make_shared<cts::core::ExactLrdAcf>(h, 0.9);
    cts::core::RateFunction rate(acf, mu, sigma2, c);
    const auto result = rate.evaluate(800.0);
    std::printf("%-8.2f %-10zu %.3f\n", h, result.critical_m, result.rate);
  }
  std::printf("\nhigher H => rate function decays => more loss; and the CTS "
              "grows -- but stays FINITE and modest\nat realistic buffers, "
              "which is the paper's whole point.\n");

  std::printf("\n== extension: MPEG GoP modulation on an LRD base ==\n\n");
  const cts::fit::ModelSpec base = cts::fit::make_za(0.9);
  auto plain = base.make_source(7);
  cts::proc::GopModulatedSource gop(base.make_source(7),
                                    cts::proc::GopPattern::ibbpbb12());
  std::vector<double> plain_trace(60000);
  std::vector<double> gop_trace(60000);
  for (std::size_t i = 0; i < plain_trace.size(); ++i) {
    plain_trace[i] = plain->next_frame();
    gop_trace[i] = gop.next_frame();
  }
  const auto r_plain = cts::stats::autocorrelation(plain_trace, 13);
  const auto r_gop = cts::stats::autocorrelation(gop_trace, 13);
  std::printf("%-6s %-12s %s\n", "lag", "plain r(k)", "GoP-modulated r(k)");
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{6},
                              std::size_t{12}}) {
    std::printf("%-6zu %-12.3f %.3f\n", k, r_plain[k], r_gop[k]);
  }
  std::printf(
      "\nGoP periodicity adds the lag-12 resonance characteristic of "
      "MPEG traffic (Section 6.2's future work);\nfeed the measured ACF "
      "into TabulatedAcf + RateFunction to dimension for it.\n");
  return 0;
}
