// Admission control on an OC-3 link -- the paper's motivating application.
//
// How many VBR videoconference connections fit on an OC-3 (149.76 Mb/s of
// cell payload) with a 30 ms delay budget and CLR <= 1e-6?  We answer with
// three rules and compare:
//
//   * B-R admission on the true LRD model (Z^0.975),
//   * B-R admission on its matched DAR(1) Markov model,
//   * classical effective-bandwidth admission on the DAR(1).
//
// The paper's Section 5.4 point: the Markov model admits essentially the
// same number of connections as the LRD model -- capturing long-range
// dependence buys nothing here.
//
// Run: ./example_admission_control [--delay-ms=30] [--clr-exp=-6]

#include <cstdio>

#include "cts/atm/cac.hpp"
#include "cts/atm/link.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/util/flags.hpp"

int main(int argc, char** argv) {
  const cts::util::Flags flags(argc, argv);
  const double delay_ms = flags.get_double("delay-ms", 30.0);
  const double clr_exp = flags.get_double("clr-exp", -6.0);

  const cts::atm::Link link(cts::atm::kOc3PayloadBitsPerSecond);
  const double Ts = 0.04;

  cts::atm::CacProblem problem;
  problem.capacity_cells_per_frame = link.cells_per_frame(Ts);
  problem.buffer_cells = link.buffer_cells_for_delay_ms(delay_ms);
  problem.log10_target_clr = clr_exp;

  std::printf("OC-3 payload rate: %.2f Mb/s = %.0f cells/s = %.0f "
              "cells/frame (40 ms frames)\n",
              cts::atm::kOc3PayloadBitsPerSecond / 1e6,
              link.cells_per_second(), problem.capacity_cells_per_frame);
  std::printf("buffer: %.0f cells (max delay %.0f ms), QOS target: CLR <= "
              "1e%+.0f\n\n",
              problem.buffer_cells, delay_ms, clr_exp);

  const cts::fit::ModelSpec lrd = cts::fit::make_za(0.975);
  const cts::fit::ModelSpec markov = cts::fit::make_dar_matched_to_za(0.975, 1);

  const auto n_lrd = cts::atm::admissible_connections_br(lrd, problem);
  const auto n_markov = cts::atm::admissible_connections_br(markov, problem);
  const auto n_eb = cts::atm::admissible_connections_eb(markov, problem);

  std::printf("%-44s %5zu connections (log10 BOP at max: %.2f)\n",
              ("B-R admission, LRD model " + lrd.name).c_str(),
              n_lrd.admissible, n_lrd.log10_bop_at_max);
  std::printf("%-44s %5zu connections (log10 BOP at max: %.2f)\n",
              ("B-R admission, Markov model " + markov.name).c_str(),
              n_markov.admissible, n_markov.log10_bop_at_max);
  std::printf("%-44s %5zu connections\n",
              "effective-bandwidth admission, Markov model",
              n_eb.admissible);

  const double mean_rate_limit =
      problem.capacity_cells_per_frame / lrd.mean;
  std::printf("\n(mean-rate packing bound: %.1f; peak-rate style allocation "
              "would admit far fewer)\n", mean_rate_limit);
  const long long diff =
      static_cast<long long>(n_lrd.admissible) -
      static_cast<long long>(n_markov.admissible);
  std::printf(
      "LRD-aware minus Markov admission difference: %lld connection(s) -- "
      "the paper's point:\ncapturing long-range dependence does not change "
      "the engineering answer at practical buffers.\n", diff);
  return 0;
}
