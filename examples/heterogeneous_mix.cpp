// Heterogeneous multiplexer study -- beyond the paper's homogeneous setup.
//
// A link carrying a MIX of source classes: LRD videoconference traffic
// (Z^0.975), Markov-modelled video (DAR(1)), and MPEG-like GoP-modulated
// LRD sources.  The aggregate of independent Gaussian-ish sources is
// Gaussian with a variance-weighted mixture ACF, so the whole CTS /
// Bahadur-Rao machinery applies to the aggregate directly.
//
// The example:
//  1. predicts the BOP of a given mix analytically,
//  2. verifies by simulation,
//  3. traces the two-class admission boundary (how many Z sources fit for
//     each count of DAR sources at CLR <= 1e-6).
//
// Run: ./example_heterogeneous_mix [--frames=20000] [--reps=3]

#include <cmath>
#include <cstdio>

#include "cts/core/heterogeneous.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/proc/gop.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/util/flags.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cp = cts::proc;
namespace cm = cts::sim;

namespace {

cc::PopulationClass cls(const cf::ModelSpec& spec, std::size_t count) {
  cc::PopulationClass out;
  out.acf = spec.acf;
  out.mean = spec.mean;
  out.variance = spec.variance;
  out.count = count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const cts::util::Flags flags(argc, argv);
  const auto frames =
      static_cast<std::uint64_t>(flags.get_int("frames", 20000));
  const auto reps = static_cast<int>(flags.get_int("reps", 3));

  const cf::ModelSpec lrd = cf::make_za(0.975);
  const cf::ModelSpec markov = cf::make_dar_matched_to_za(0.7, 1);

  const std::size_t n_lrd = 10;
  const std::size_t n_markov = 10;
  const double capacity = 20 * 520.0;  // cells/frame
  const double buffer = 20 * 120.0;    // cells (~12 ms at this drain rate)

  std::printf("mix: %zu x %s + %zu x %s on C = %.0f cells/frame, B = %.0f "
              "cells\n\n",
              n_lrd, lrd.name.c_str(), n_markov, markov.name.c_str(),
              capacity, buffer);

  // 1. Analytic prediction for the aggregate.
  const cc::BopPoint predicted = cc::heterogeneous_br_log10_bop(
      {cls(lrd, n_lrd), cls(markov, n_markov)}, capacity, buffer);
  std::printf("aggregate B-R prediction: log10 BOP = %.2f  (aggregate CTS "
              "m* = %zu frames)\n",
              predicted.log10_bop, predicted.critical_m);

  // 2. Simulate the same mix.
  double lost = 0.0;
  double arrived = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<cp::FrameSource>> sources;
    const std::uint64_t base = 5000 + static_cast<std::uint64_t>(rep) * 977;
    for (std::size_t i = 0; i < n_lrd; ++i) {
      sources.push_back(lrd.make_source(base + i));
    }
    for (std::size_t i = 0; i < n_markov; ++i) {
      sources.push_back(markov.make_source(base + 100 + i));
    }
    cm::FluidRunConfig config;
    config.frames = frames;
    config.warmup_frames = 500;
    config.capacity_cells = capacity;
    config.buffer_sizes_cells = {buffer};
    const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
    lost += result.clr[0].lost_cells;
    arrived += result.arrived_cells;
  }
  const double clr = arrived > 0.0 ? lost / arrived : 0.0;
  if (clr > 0.0) {
    std::printf("simulated CLR:            log10     = %.2f  (finite "
                "buffer, %d reps x %llu frames)\n",
                std::log10(clr), reps,
                static_cast<unsigned long long>(frames));
  } else {
    std::printf("simulated CLR: no losses at this scale (prediction is an "
                "infinite-buffer bound)\n");
  }

  // 3. Two-class admission boundary at CLR <= 1e-6 on the paper link.
  std::printf("\nadmission boundary (CLR <= 1e-6, C = %.0f, B = %.0f):\n\n",
              capacity, buffer);
  std::printf("%-14s %s\n", "markov count", "max LRD sources");
  for (std::size_t nm = 0; nm <= 20; nm += 4) {
    std::size_t lo = 0;
    std::size_t hi = 40;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      const double total_mean =
          (static_cast<double>(nm) + static_cast<double>(mid)) * 500.0;
      double bop = 0.0;
      if (total_mean >= capacity) {
        bop = 0.0;  // unstable
      } else {
        bop = cc::heterogeneous_br_log10_bop(
                  {cls(lrd, mid), cls(markov, nm)}, capacity, buffer)
                  .log10_bop;
      }
      if (bop <= -6.0) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    std::printf("%-14zu %zu\n", nm, lo);
  }

  // Bonus: GoP-modulated LRD class in the mix (simulation only -- the
  // periodic modulation needs its measured ACF for analytics; see
  // example_cts_explorer).
  std::printf(
      "\nswap any class for a GoP-modulated one via proc::GopModulatedSource "
      "and feed its measured ACF\n(stats::autocorrelation -> "
      "core::TabulatedAcf) into the same machinery.\n");
  return 0;
}
