// Model identification workflow -- what a traffic engineer would do with a
// captured frame-size trace:
//
//  1. "Capture" a trace (here: generate one from Z^0.9, playing the role of
//     a real LRD videoconference recording).
//  2. Verify the marginal (moments + KS normality check).
//  3. Estimate the Hurst parameter three ways (variance-time, R/S, GPH) --
//     confirming the trace is LRD, as Beran et al. found for real video.
//  4. Measure the empirical ACF and fit DAR(p) Markov models to it.
//  5. Feed BOTH the empirical ACF and the fitted DAR ACF into the CTS
//     machinery and compare predicted loss -- showing the fitted Markov
//     model is all you need at practical buffer sizes.
//
// Run: ./example_model_identification [--frames=120000]

#include <cstdio>
#include <vector>

#include "cts/core/acf_model.hpp"
#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/fit/dar_fit.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/sim/curves.hpp"
#include "cts/stats/acf.hpp"
#include "cts/stats/hurst.hpp"
#include "cts/stats/ks.hpp"
#include "cts/util/flags.hpp"

int main(int argc, char** argv) {
  const cts::util::Flags flags(argc, argv);
  const auto frames =
      static_cast<std::size_t>(flags.get_int("frames", 120000));

  // 1. Capture.
  const cts::fit::ModelSpec truth = cts::fit::make_za(0.9);
  auto source = truth.make_source(2026);
  std::vector<double> trace(frames);
  for (auto& x : trace) x = source->next_frame();
  std::printf("captured %zu frames from '%s' (playing a real trace)\n\n",
              frames, truth.name.c_str());

  // 2. Marginal.
  const double mean = cts::stats::sample_mean(trace);
  const double var = cts::stats::sample_variance(trace);
  const cts::stats::KsResult ks =
      cts::stats::ks_test_normal(trace, mean, var);
  std::printf("marginal: mean %.1f cells/frame, variance %.0f, KS distance "
              "to Gaussian %.4f\n\n", mean, var, ks.statistic);

  // 3. Hurst estimation.
  const auto vt = cts::stats::hurst_variance_time(trace);
  const auto rs = cts::stats::hurst_rescaled_range(trace);
  const auto gph = cts::stats::hurst_gph(trace);
  std::printf("Hurst estimates: variance-time %.3f (R^2 %.3f) | R/S %.3f | "
              "GPH %.3f\n", vt.hurst, vt.r_squared, rs.hurst, gph.hurst);
  std::printf("=> H > 0.5: the trace is long-range dependent.\n\n");

  // 4. Fit DAR(p) to the first p empirical correlations.
  const std::vector<double> acf = cts::stats::autocorrelation(trace, 16);
  std::printf("empirical ACF: r(1)=%.3f r(2)=%.3f r(3)=%.3f r(10)=%.3f\n\n",
              acf[1], acf[2], acf[3], acf[10]);

  cts::sim::MuxGeometry mux;  // would come from the link under study
  mux.n_sources = 30;
  mux.bandwidth_per_source = 538.0;
  mux.Ts = 0.04;

  // 5. Compare predicted loss: empirical ACF vs fitted DAR(p).
  auto empirical_acf = std::make_shared<cts::core::TabulatedAcf>(
      std::vector<double>(acf.begin(), acf.begin() + 17));
  cts::core::RateFunction empirical_rate(empirical_acf, mean, var,
                                         mux.bandwidth_per_source);

  std::printf("%-10s %-14s %-14s %s\n", "B (ms)", "empirical ACF",
              "DAR(1)", "DAR(3)   [log10 BOP, N=30, c=538]");
  for (const double ms : {2.0, 10.0, 30.0}) {
    const double b = mux.buffer_ms_to_cells(ms) / 30.0;
    std::printf("%-10.0f %-14.2f", ms,
                cts::core::br_log10_bop(empirical_rate, b, 30).log10_bop);
    for (const std::size_t p : {std::size_t{1}, std::size_t{3}}) {
      const std::vector<double> targets(acf.begin() + 1,
                                        acf.begin() + 1 +
                                            static_cast<std::ptrdiff_t>(p));
      const cts::fit::DarFit fit = cts::fit::fit_dar(targets);
      auto dar_acf =
          std::make_shared<cts::core::DarAcf>(fit.rho, fit.lag_probs);
      cts::core::RateFunction dar_rate(dar_acf, mean, var,
                                       mux.bandwidth_per_source);
      std::printf(" %-13.2f",
                  cts::core::br_log10_bop(dar_rate, b, 30).log10_bop);
    }
    std::printf("\n");
  }
  std::printf(
      "\nthe DAR(p) columns track the empirical-ACF column closely: the "
      "fitted Markov model suffices\nfor QOS prediction despite the "
      "measured LRD.\n");
  return 0;
}
