// Quickstart: the library in five steps.
//
//  1. Build an LRD VBR video model (Z^0.975) from the model zoo.
//  2. Ask the large-deviations core for its Critical Time Scale.
//  3. Predict the buffer-overflow probability (Bahadur-Rao).
//  4. Simulate the same multiplexer and estimate the CLR.
//  5. Compare -- the CTS tells you how many frame correlations mattered.
//
// Build & run:  ./example_quickstart [--frames=50000] [--reps=4]

#include <cmath>
#include <cstdio>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/sim/curves.hpp"
#include "cts/sim/replication.hpp"
#include "cts/util/flags.hpp"

int main(int argc, char** argv) {
  const cts::util::Flags flags(argc, argv);

  // 1. An LRD video source: Gaussian N(500, 5000) cells/frame marginal,
  //    Hurst 0.9 long-term correlations, strong geometric short-term
  //    correlations (a = 0.975).
  const cts::fit::ModelSpec model = cts::fit::make_za(0.975);
  std::printf("model: %s   mean %.0f cells/frame, variance %.0f\n",
              model.name.c_str(), model.mean, model.variance);
  std::printf("ACF:   r(1)=%.3f  r(10)=%.3f  r(100)=%.3f  r(1000)=%.4f\n\n",
              model.acf->at(1), model.acf->at(10), model.acf->at(100),
              model.acf->at(1000));

  // 2. Multiplexer geometry: N = 30 sources, c cells/frame each, 10 ms of
  //    total buffering.  (The default c = 522 keeps the CLR measurable in
  //    a few seconds of simulation; the paper's own operating point is
  //    c = 538, where resolving the ~1e-6 CLR needs its 60 x 500k-frame
  //    budget -- try --bandwidth=538 --frames=500000.)
  cts::sim::MuxGeometry mux;
  mux.n_sources = 30;
  mux.bandwidth_per_source = flags.get_double("bandwidth", 522.0);
  mux.Ts = 0.04;
  const double buffer_ms = flags.get_double("buffer-ms", 10.0);
  const double b = mux.buffer_ms_to_cells(buffer_ms) /
                   static_cast<double>(mux.n_sources);

  cts::core::RateFunction rate(model.acf, model.mean, model.variance,
                               mux.bandwidth_per_source);
  const cts::core::RateResult cts_result = rate.evaluate(b);
  std::printf("at B = %.0f ms: Critical Time Scale m* = %zu frames\n",
              buffer_ms, cts_result.critical_m);
  std::printf("=> only the first %zu frame correlations affect the loss; "
              "the LRD tail beyond is irrelevant here.\n\n",
              cts_result.critical_m);

  // 3. Analytic BOP.
  const cts::core::BopPoint bop =
      cts::core::br_log10_bop(rate, b, mux.n_sources);
  std::printf("Bahadur-Rao BOP prediction: log10 P(W > B) = %.2f\n",
              bop.log10_bop);

  // 4. Simulate.
  cts::sim::ReplicationConfig scale;
  scale.replications =
      static_cast<std::size_t>(flags.get_int("reps", 4));
  scale.frames_per_replication =
      static_cast<std::uint64_t>(flags.get_int("frames", 50000));
  scale.warmup_frames = 1000;
  const cts::sim::SimulatedCurve sim =
      cts::sim::simulated_clr_curve(model, mux, {buffer_ms}, scale);
  if (sim.clr[0] > 0.0) {
    std::printf("simulated CLR:              log10 = %.2f  "
                "(95%% CI [%.2e, %.2e])\n",
                std::log10(sim.clr[0]), sim.ci_low[0], sim.ci_high[0]);
  } else {
    std::printf("simulated CLR: 0 losses observed (below measurement "
                "floor at this scale)\n");
  }

  // 5. The punchline.
  std::printf(
      "\nThe B-R asymptotic upper-bounds the simulated CLR (it targets the "
      "infinite-buffer BOP);\nrun with a larger --frames to tighten the "
      "estimate, or try --buffer-ms=2 vs 30.\n");
  return 0;
}
