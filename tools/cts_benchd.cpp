// cts-benchd: performance-telemetry orchestrator.
//
// Runs a configurable suite of the figure/table benches (bench_suite.hpp)
// with warmup + R measured repeats each.  Every measured run executes the
// bench binary with --perf=<tmp>.json; the child's cts.perf.v1 report
// (getrusage deltas, hardware counters when the kernel permits, span
// self-time table) is parsed back and aggregated into median / MAD / 95%
// CI per metric.  The result is one canonical, schema-versioned
// cts.bench.v1 document — BENCH_<ISO-date>.json at the invocation
// directory by default — that tools/cts_benchcmp can diff against a
// committed baseline with noise-aware thresholds.
//
//   cts_benchd --suite=smoke --repeats=5            # the usual call
//   cts_benchd --suite=full --repeats=3 --warmup=1  # everything (slow)
//   cts_benchd --compare=BENCH_base.json            # run + gate in one shot
//   cts_benchd --json-lines=runs.jsonl              # per-run soak stream
//   cts_benchd --list                               # show the registry
//
// --compare runs the suite, writes the document, then gates it against
// the given baseline with the same noise-aware rules (and exit codes) as
// cts_benchcmp: 0 no regression, 1 regression, 2 errors (including a
// bench that failed to run).  --json-lines appends one RFC 8259 JSON
// object per run (schema cts.benchrun.v1, warmup runs flagged) as the
// suite executes, so a soak loop can be tailed live.
//
// The simulation scale of every child is pinned via REPRO_REPS /
// REPRO_FRAMES (defaults: 2 x 2000, override with --reps/--frames) so two
// BENCH files are comparable by construction; the scale is echoed into the
// document.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/utsname.h>
#include <unistd.h>

#include "bench_suite.hpp"
#include "cts/obs/bench_compare.hpp"
#include "cts/obs/bench_stats.hpp"
#include "cts/obs/event_log.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/perf.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"

namespace fs = std::filesystem;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

constexpr const char* kMetricNames[] = {
    "wall_s",         "user_s",          "sys_s",
    "max_rss_kb",     "ctx_voluntary",   "ctx_involuntary",
};
constexpr const char* kHwCounterNames[] = {
    "cycles",      "instructions",  "cache_references",
    "cache_misses", "branches",     "branch_misses",
};

struct Options {
  std::string suite = "smoke";
  std::string filter;
  std::string out;
  std::string bench_dir;
  std::string date;
  std::string compare;     ///< baseline for the one-shot gate ("" = off)
  std::string json_lines;  ///< per-run JSONL stream path ("" = off)
  long long repeats = 5;
  long long warmup = 1;
  long long repro_reps = 2;
  long long repro_frames = 2000;
  double k_mad = 3.0;    ///< --compare noise gate
  double min_rel = 0.05; ///< --compare relative gate
  bool keep_runs = false;
  bool quiet = false;
};

/// One parsed per-run perf report, flattened for aggregation.
struct RunSample {
  std::map<std::string, double> metrics;           ///< resources.*
  std::map<std::string, double> hw;                ///< hw.counters.* + ipc
  bool hw_available = false;
  std::string hw_backend;                          ///< hw.backend when available
  std::string hw_reason;
  std::map<std::string, double> phase_self_us;     ///< phases[].self_us
  std::map<std::string, double> phase_spans;       ///< phases[].spans
};

double now_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string today_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

void usage() {
  std::printf(
      "usage: cts_benchd [--suite=smoke|sim|analytic|full] [--filter=SUBSTR]\n"
      "                  [--repeats=N] [--warmup=N] [--out=PATH]\n"
      "                  [--bench-dir=DIR] [--reps=N] [--frames=N]\n"
      "                  [--date=YYYY-MM-DD] [--compare=BASE.json] [--k=3]\n"
      "                  [--pct=5] [--json-lines=PATH] [--keep-runs]\n"
      "                  [--quiet] [--list]\n\n"
      "Runs the selected bench suite with warmup + N measured repeats per\n"
      "bench and writes a cts.bench.v1 document (default: "
      "BENCH_<date>.json\n"
      "in the current directory) with median/MAD/95%% CI per metric, peak\n"
      "RSS, user/sys CPU time, hardware counters when available, and a\n"
      "per-phase span self-time table.  --compare=BASE.json then gates the\n"
      "fresh document against BASE in the same invocation, with\n"
      "cts_benchcmp's rules and exit codes (0 ok, 1 regression, 2 error);\n"
      "--json-lines=PATH streams one cts.benchrun.v1 JSON object per run\n"
      "for soak monitoring.\n");
}

bool in_suite(const bench::BenchSpec& s, const std::string& suite) {
  if (suite == "full") return true;
  if (suite == "smoke") return s.smoke;
  return suite == s.kind;  // "sim" | "analytic"
}

/// Runs one bench once; returns false when the child fails or its perf
/// report cannot be parsed (detail in *error).
bool run_once(const Options& opt, const bench::BenchSpec& spec,
              const std::string& perf_path, RunSample* out,
              std::string* error) {
  const std::string binary =
      (fs::path(opt.bench_dir) / spec.binary).string();
  std::ostringstream cmd;
  cmd << "REPRO_REPS=" << opt.repro_reps
      << " REPRO_FRAMES=" << opt.repro_frames << " CTS_QUIET=1 '" << binary
      << "' --quiet --perf='" << perf_path << "' > /dev/null 2>&1";
  const int rc = std::system(cmd.str().c_str());
  if (rc != 0) {
    *error = spec.binary + std::string(" exited with status ") +
             std::to_string(rc);
    return false;
  }
  std::string text;
  if (!cu::read_text_file(perf_path, &text, error)) return false;
  try {
    const obs::JsonValue doc = obs::json_parse(text);
    cu::require(doc.at("schema").as_string() == obs::PerfReport::kSchema,
                "unexpected perf schema");
    const obs::JsonValue& res = doc.at("resources");
    for (const char* name : kMetricNames) {
      out->metrics[name] = res.at(name).as_number();
    }
    const obs::JsonValue& hw = doc.at("hw");
    out->hw_available = hw.at("available").as_bool();
    if (out->hw_available) {
      out->hw_backend = hw.at("backend").as_string();
      for (const auto& [name, v] : hw.at("counters").members) {
        out->hw[name] = v.as_number();
      }
      out->hw["ipc"] = hw.at("ipc").as_number();
    } else {
      out->hw_reason = hw.at("reason").as_string();
    }
    for (const obs::JsonValue& phase : doc.at("phases").items) {
      const std::string& name = phase.at("phase").as_string();
      out->phase_self_us[name] = phase.at("self_us").as_number();
      out->phase_spans[name] = phase.at("spans").as_number();
    }
  } catch (const cu::Error& e) {
    *error = std::string("perf report parse error: ") + e.what();
    return false;
  }
  return true;
}

/// One cts.benchrun.v1 line for the --json-lines stream: the flattened
/// per-run sample, warmup runs included (flagged) so a soak monitor sees
/// every execution as it happens.
void write_json_line(std::ostream& os, const bench::BenchSpec& spec,
                     long long run_index, bool warmup, const RunSample& s) {
  std::ostringstream line;
  obs::JsonWriter w(line);
  w.begin_object();
  w.key("schema").value("cts.benchrun.v1");
  w.key("bench").value(spec.id);
  w.key("kind").value(spec.kind);
  w.key("run").value(static_cast<std::int64_t>(run_index));
  w.key("warmup").value(warmup);
  for (const char* name : kMetricNames) {
    w.key(name).value(s.metrics.at(name));
  }
  w.key("hw_available").value(s.hw_available);
  if (s.hw_available) {
    const auto ipc = s.hw.find("ipc");
    if (ipc != s.hw.end()) w.key("ipc").value(ipc->second);
  }
  w.end_object();
  os << line.str() << '\n';
  os.flush();  // a tailing soak monitor must see the line immediately
}

void write_summary(obs::JsonWriter& w, const obs::RobustSummary& s,
                   const std::vector<double>& samples) {
  w.begin_object();
  w.key("n").value(static_cast<std::uint64_t>(s.n));
  w.key("median").value(s.median);
  w.key("mad").value(s.mad);
  w.key("ci95_lo").value(s.ci95_lo);
  w.key("ci95_hi").value(s.ci95_hi);
  w.key("min").value(s.min);
  w.key("max").value(s.max);
  w.key("mean").value(s.mean);
  w.key("samples").begin_array();
  for (const double v : samples) w.value(v);
  w.end_array();
  w.end_object();
}

int run(const Options& opt) {
  std::vector<const bench::BenchSpec*> selected;
  for (const bench::BenchSpec& s : bench::kSuite) {
    if (!in_suite(s, opt.suite)) continue;
    if (!opt.filter.empty() &&
        std::string(s.id).find(opt.filter) == std::string::npos) {
      continue;
    }
    selected.push_back(&s);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "cts_benchd: no benches match suite '%s'%s%s\n",
                 opt.suite.c_str(),
                 opt.filter.empty() ? "" : " filter ",
                 opt.filter.c_str());
    return 2;
  }

  const std::string date = opt.date.empty() ? today_utc() : opt.date;
  const std::string out_path =
      opt.out.empty() ? "BENCH_" + date + ".json" : opt.out;

  std::error_code ec;
  const fs::path run_dir =
      fs::temp_directory_path(ec) /
      ("cts_benchd_" + std::to_string(static_cast<long long>(getpid())));
  fs::create_directories(run_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cts_benchd: cannot create run dir %s: %s\n",
                 run_dir.string().c_str(), ec.message().c_str());
    return 2;
  }

  std::ofstream jsonl;
  if (!opt.json_lines.empty()) {
    jsonl.open(opt.json_lines);
    if (!jsonl) {
      std::fprintf(stderr, "cts_benchd: cannot write %s\n",
                   opt.json_lines.c_str());
      return 2;
    }
  }

  std::ostringstream body;
  obs::JsonWriter w(body);
  w.begin_object();
  w.key("schema").value("cts.bench.v1");
  w.key("generated").value(date);
  w.key("suite").value(opt.suite);
  w.key("repeats").value(static_cast<std::int64_t>(opt.repeats));
  w.key("warmup").value(static_cast<std::int64_t>(opt.warmup));
  w.key("scale").begin_object();
  w.key("repro_reps").value(static_cast<std::int64_t>(opt.repro_reps));
  w.key("repro_frames").value(static_cast<std::int64_t>(opt.repro_frames));
  w.end_object();

  w.key("host").begin_object();
  w.key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  utsname uts{};
  if (uname(&uts) == 0) {
    w.key("os").value(std::string(uts.sysname) + " " + uts.release);
    w.key("machine").value(uts.machine);
  }
  w.end_object();

  int failures = 0;
  obs::log_info("suite.start",
                {{"suite", opt.suite},
                 {"benches", static_cast<std::uint64_t>(selected.size())},
                 {"repeats", static_cast<std::int64_t>(opt.repeats)}});
  w.key("benches").begin_object();
  for (const bench::BenchSpec* spec : selected) {
    if (!opt.quiet) {
      std::fprintf(stderr, "[cts_benchd] %-22s %s x%lld (+%lld warmup)\n",
                   spec->id, spec->kind, opt.repeats, opt.warmup);
    }
    std::vector<RunSample> samples;
    std::string error;
    bool failed = false;
    const double bench_start_s = now_s();
    const long long total_runs = opt.warmup + opt.repeats;
    for (long long i = 0; i < total_runs; ++i) {
      const std::string perf_path =
          (run_dir / (std::string(spec->id) + "_run" + std::to_string(i) +
                      ".json"))
              .string();
      RunSample sample;
      if (!run_once(opt, *spec, perf_path, &sample, &error)) {
        std::fprintf(stderr, "[cts_benchd] FAILED %s: %s\n", spec->id,
                     error.c_str());
        failed = true;
        break;
      }
      if (jsonl.is_open()) {
        write_json_line(jsonl, *spec, i, i < opt.warmup, sample);
      }
      if (i >= opt.warmup) samples.push_back(std::move(sample));
    }
    if (failed || samples.empty()) {
      ++failures;
      obs::log_warn("bench.fail",
                    {{"bench", spec->id},
                     {"error", failed ? error : std::string("no samples")}});
      continue;
    }
    obs::log_info("bench.done",
                  {{"bench", spec->id},
                   {"runs", static_cast<std::uint64_t>(samples.size())},
                   {"wall_ms", (now_s() - bench_start_s) * 1e3}});

    w.key(spec->id).begin_object();
    w.key("binary").value(spec->binary);
    w.key("kind").value(spec->kind);
    w.key("title").value(spec->title);
    w.key("runs").value(static_cast<std::uint64_t>(samples.size()));

    w.key("metrics").begin_object();
    for (const char* name : kMetricNames) {
      std::vector<double> values;
      values.reserve(samples.size());
      for (const RunSample& s : samples) values.push_back(s.metrics.at(name));
      write_summary(w.key(name), obs::robust_summary(values), values);
    }
    w.end_object();

    const bool hw_ok = !samples.empty() &&
                       std::all_of(samples.begin(), samples.end(),
                                   [](const RunSample& s) {
                                     return s.hw_available;
                                   });
    w.key("hw").begin_object();
    w.key("available").value(hw_ok);
    if (hw_ok) {
      const bool same_backend =
          std::all_of(samples.begin(), samples.end(),
                      [&](const RunSample& s) {
                        return s.hw_backend == samples.front().hw_backend;
                      });
      w.key("backend").value(same_backend ? samples.front().hw_backend
                                          : std::string("mixed"));
      w.key("counters").begin_object();
      for (const char* name : kHwCounterNames) {
        if (samples.front().hw.find(name) == samples.front().hw.end()) {
          continue;
        }
        std::vector<double> values;
        for (const RunSample& s : samples) values.push_back(s.hw.at(name));
        write_summary(w.key(name), obs::robust_summary(values), values);
      }
      w.end_object();
      std::vector<double> ipc;
      for (const RunSample& s : samples) ipc.push_back(s.hw.at("ipc"));
      w.key("ipc_median").value(obs::median_of(ipc));
    } else {
      w.key("reason").value(samples.front().hw_available
                                ? "hardware counters flapped between runs"
                                : samples.front().hw_reason);
    }
    w.end_object();

    // Phase self-time table: median over runs, plus the share of the total
    // attributed self time (medians renormalised, so shares sum to ~1).
    std::map<std::string, std::vector<double>> phase_values;
    std::map<std::string, std::vector<double>> phase_span_counts;
    for (const RunSample& s : samples) {
      for (const auto& [phase, v] : s.phase_self_us) {
        phase_values[phase].push_back(v);
        phase_span_counts[phase].push_back(s.phase_spans.at(phase));
      }
    }
    double self_total = 0.0;
    std::map<std::string, double> phase_median;
    for (const auto& [phase, values] : phase_values) {
      phase_median[phase] = obs::median_of(values);
      self_total += phase_median[phase];
    }
    w.key("phases").begin_array();
    for (const auto& [phase, values] : phase_values) {
      w.begin_object();
      w.key("phase").value(phase);
      w.key("self_us_median").value(phase_median[phase]);
      w.key("self_share")
          .value(self_total > 0.0 ? phase_median[phase] / self_total : 0.0);
      w.key("spans_median").value(obs::median_of(phase_span_counts[phase]));
      w.end_object();
    }
    w.end_array();

    w.end_object();  // bench
  }
  w.end_object();  // benches
  w.end_object();  // document

  if (!opt.keep_runs) fs::remove_all(run_dir, ec);

  // Self-check: the document we are about to commit to disk must satisfy
  // our own strict validator.
  std::string error;
  if (!obs::json_parse_check(body.str(), &error)) {
    std::fprintf(stderr, "cts_benchd: internal error, emitted JSON invalid: %s\n",
                 error.c_str());
    return 2;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cts_benchd: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << body.str() << '\n';
  out.close();
  obs::log_info("suite.done",
                {{"suite", opt.suite},
                 {"out", out_path},
                 {"benches", static_cast<std::int64_t>(
                                 static_cast<int>(selected.size()) -
                                 failures)},
                 {"failed", failures}});
  if (!opt.quiet) {
    std::fprintf(stderr, "[cts_benchd] wrote %s (%d benches, %d failed)\n",
                 out_path.c_str(),
                 static_cast<int>(selected.size()) - failures, failures);
  }
  if (opt.keep_runs && !opt.quiet) {
    std::fprintf(stderr, "[cts_benchd] per-run reports kept in %s\n",
                 run_dir.string().c_str());
  }

  // One-shot gate: compare the document we just wrote against the given
  // baseline with cts_benchcmp's rules and exit codes.  A bench that
  // failed to run is an error (2), not a pass — a gate must never go
  // green because the regressed bench crashed out of the measurement.
  if (!opt.compare.empty()) {
    if (failures != 0) {
      std::fprintf(stderr,
                   "cts_benchd: %d bench(es) failed; refusing to gate an "
                   "incomplete document against %s\n",
                   failures, opt.compare.c_str());
      return 2;
    }
    std::string base_text;
    std::string read_error;
    if (!cu::read_text_file(opt.compare, &base_text, &read_error)) {
      std::fprintf(stderr, "cts_benchd: cannot read baseline: %s\n",
                   read_error.c_str());
      return 2;
    }
    obs::CompareOptions options;
    options.k_mad = opt.k_mad;
    options.min_rel = opt.min_rel;
    const obs::JsonValue baseline = obs::json_parse(base_text);
    const obs::JsonValue candidate = obs::json_parse(body.str());
    const obs::CompareReport report =
        obs::compare_bench_reports(baseline, candidate, options);
    if (!opt.quiet) {
      std::printf("%s", obs::format_compare_report(report).c_str());
    }
    if (report.has_regression()) {
      std::fputs(obs::format_regressions(report, options).c_str(), stderr);
      return 1;
    }
    if (!opt.quiet) std::printf("no regressions beyond threshold\n");
    return 0;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kBenchdFlags));

    // Structured events are opt-in: --log appends cts.events.v1 JSONL with
    // the suite/bench lifecycle (stderr keeps the human progress lines).
    const std::string log_path = flags.get_string("log", "");
    if (!log_path.empty()) obs::EventLog::global().open(log_path);
    obs::EventLog::global().set_min_level(
        obs::parse_log_level(flags.get_string("log-level", "info")));

    Options opt;
    opt.suite = flags.get_string("suite", opt.suite);
    if (opt.suite != "smoke" && opt.suite != "sim" &&
        opt.suite != "analytic" && opt.suite != "full") {
      std::fprintf(stderr, "cts_benchd: unknown suite '%s'\n",
                   opt.suite.c_str());
      usage();
      return 2;
    }
    opt.filter = flags.get_string("filter", "");
    opt.out = flags.get_string("out", "");
    opt.date = flags.get_string("date", "");
    opt.compare = flags.get_string("compare", "");
    opt.json_lines = flags.get_string("json-lines", "");
    opt.repeats = flags.get_int("repeats", opt.repeats);
    opt.warmup = flags.get_int("warmup", opt.warmup);
    opt.repro_reps = flags.get_int("reps", opt.repro_reps);
    opt.repro_frames = flags.get_int("frames", opt.repro_frames);
    opt.k_mad = flags.get_double("k", opt.k_mad);
    opt.min_rel = flags.get_double("pct", opt.min_rel * 100.0) / 100.0;
    opt.keep_runs = flags.get_bool("keep-runs", false);
    opt.quiet = flags.get_bool("quiet", false);
    cu::require(opt.repeats >= 1, "cts_benchd: --repeats must be >= 1");
    cu::require(opt.warmup >= 0, "cts_benchd: --warmup must be >= 0");

    if (flags.get_bool("list", false)) {
      std::printf("%-24s %-9s %-6s %s\n", "id", "kind", "smoke", "title");
      for (const bench::BenchSpec& s : bench::kSuite) {
        std::printf("%-24s %-9s %-6s %s\n", s.id, s.kind,
                    s.smoke ? "yes" : "no", s.title);
      }
      return 0;
    }

    // Bench binaries: --bench-dir beats CTS_BENCH_DIR beats the build-tree
    // layout convention (tools/ and bench/ are sibling directories).
    opt.bench_dir = flags.get_string("bench-dir", "");
    if (opt.bench_dir.empty()) {
      const char* env = std::getenv("CTS_BENCH_DIR");
      if (env != nullptr && env[0] != '\0') {
        opt.bench_dir = env;
      } else {
        opt.bench_dir =
            (fs::path(argv[0]).parent_path() / ".." / "bench").string();
      }
    }
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_benchd: %s\n", e.what());
    return 2;
  }
}
