// cts-simd: multi-process / multi-machine shard orchestrator for the
// replication benches.
//
//   cts_simd run BENCH_BINARY [--shards=N] [--out-dir=DIR] [--metrics=PATH]
//                             [--keep-shards] [--timeout=SECS] [--quiet]
//   cts_simd run BENCH_ID --workers=HOST:PORT,... [--shards=N]
//                             [--job-timeout=SECS] [--retries=N]
//                             [--bench-dir=DIR] [--dispatch-metrics=PATH]
//                             [--trace=PATH] [...common flags]
//   cts_simd merge SHARD.json... [--metrics=PATH] [--quiet]
//   cts_simd diff REPORT_A.json REPORT_B.json [--quiet]
//
// Local `run` fork/execs N worker shards of BENCH_BINARY (each gets
// --shard=i/N --shard-out=<dir>/shard_i.json --quiet, stdout/stderr to
// <dir>/shard_i.log), waits for all of them — with --timeout=SECS a
// straggler is SIGKILLed and reported instead of wedging the orchestrator
// forever — merges the shard files and writes the merged --metrics run
// report.  With --workers= the same shards are dispatched as cts.job.v1
// jobs to cts_shardd daemons over TCP: BENCH becomes a bench REGISTRY id
// (the workers refuse arbitrary paths), each job carries the REPRO_* scale
// from this process's environment plus a per-job deadline, failures and
// timeouts are retried with exponential backoff and reassigned to another
// worker, and when every worker is down the remaining shards fall back to
// local fork/exec.  Replication scale still comes from the environment
// (REPRO_FULL / REPRO_REPS / REPRO_FRAMES), which workers inherit via the
// job env.  The merge path is identical in every mode — a loopback
// multi-worker run is `cts_simd diff`-identical to a single-process run.
//
// `merge` does the same for pre-written cts.shard.v1 files (e.g. collected
// from separate machines).  `diff` compares the metrics sections of two
// run reports the way a shard merge can match a single-process run:
// counters exactly, sums to 1e-9 relative tolerance (Kahan summation is
// order-sensitive across shard boundaries), gauges exactly except the
// layout-dependent {sim.threads, sim.shard.index, sim.shard.count}, and
// histograms by count only when the name contains "wall_ms" (timings are
// never reproducible), and log-bucketed percentile histograms likewise by
// count only when the name contains "_ms".  A section missing from one
// report entirely is a reported difference (exit 1), not a parse error.
//
// Exit codes: 0 success / reports match, 1 worker failure / merge error /
// reports differ, 2 usage or parse errors.
//
// Note: pass value flags in --key=value form; positional arguments that
// follow a bare boolean flag would otherwise be consumed as its value.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite.hpp"
#include "cts/net/job.hpp"
#include "cts/net/retry.hpp"
#include "cts/net/socket.hpp"
#include "cts/obs/event_log.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/profiler.hpp"
#include "cts/obs/run_report.hpp"
#include "cts/obs/trace.hpp"
#include "cts/obs/trace_merge.hpp"
#include "cts/sim/replication.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/subprocess.hpp"
#include "cts/util/table.hpp"

namespace fs = std::filesystem;
namespace net = cts::net;
namespace obs = cts::obs;
namespace sim = cts::sim;
namespace cu = cts::util;

namespace {

void usage() {
  std::printf(
      "usage: cts_simd run BENCH_BINARY [--shards=N] [--out-dir=DIR]\n"
      "                    [--metrics=PATH] [--keep-shards] "
      "[--timeout=SECS]\n"
      "                    [--quiet]\n"
      "       cts_simd run BENCH_ID --workers=HOST:PORT,... [--shards=N]\n"
      "                    [--job-timeout=SECS] [--retries=N] "
      "[--bench-dir=DIR]\n"
      "                    [--dispatch-metrics=PATH] [--trace=PATH]\n"
      "                    [--profile=PATH] [--profile-folded=PATH]\n"
      "                    [--profile-hz=N] "
      "[--profile-backend=thread|itimer]\n"
      "                    [--log=PATH] [--log-level=LEVEL] [...]\n"
      "       cts_simd merge SHARD.json... [--metrics=PATH] [--quiet]\n"
      "       cts_simd diff REPORT_A.json REPORT_B.json [--quiet]\n\n"
      "Scale comes from the environment the workers inherit: REPRO_FULL=1,\n"
      "REPRO_REPS, REPRO_FRAMES (forwarded inside the job in --workers "
      "mode).\n"
      "Exit codes: 0 success/match, 1 failure/mismatch, 2 usage or parse "
      "error.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// -------------------------------------------------------------------------
// merge + report emission (shared by `run` and `merge`)

/// Folds the merged shard set into this (otherwise idle) process's global
/// registry and writes the same {"config":...,"metrics":...} run report a
/// single-process bench run with --metrics would produce.
bool write_merged_report(const sim::MergedShards& merged,
                         const std::string& metrics_path, bool quiet) {
  obs::MetricsRegistry::global().merge(merged.metrics);
  obs::RunReport report;
  report.set("run_id", "cts_simd");
  report.set("tool", "cts_simd");
  report.set("shard_count", static_cast<std::uint64_t>(merged.shard_count));
  report.set("experiments",
             static_cast<std::uint64_t>(merged.experiments.size()));
  if (!merged.experiments.empty()) {
    const sim::ReplicationConfig& config = merged.experiments.front().config;
    report.set("replications", static_cast<std::uint64_t>(config.replications));
    report.set("frames_per_replication", config.frames_per_replication);
    report.set("warmup_frames", config.warmup_frames);
    report.set("master_seed", config.master_seed);
  }
  if (!report.write(metrics_path)) {
    std::fprintf(stderr, "cts_simd: could not write metrics to %s\n",
                 metrics_path.c_str());
    return false;
  }
  if (!quiet) {
    std::printf("[merged metrics written to %s]\n", metrics_path.c_str());
  }
  return true;
}

void print_merged_summary(const sim::MergedShards& merged) {
  std::printf("merged %zu shard(s), %zu experiment(s)\n", merged.shard_count,
              merged.experiments.size());
  for (const sim::MergedExperiment& experiment : merged.experiments) {
    std::printf("\n%s: %zu reps x %llu frames, seed %llu\n",
                experiment.label.c_str(), experiment.config.replications,
                static_cast<unsigned long long>(
                    experiment.config.frames_per_replication),
                static_cast<unsigned long long>(
                    experiment.config.master_seed));
    cu::TextTable table({"B (cells)", "pooled CLR", "CI low", "CI high"});
    for (const sim::ClrEstimate& est : experiment.result.clr) {
      table.add_row({cu::format_fixed(est.buffer_cells, 0),
                     cu::format_sci(est.pooled_clr, 4),
                     cu::format_sci(est.clr.low(), 4),
                     cu::format_sci(est.clr.high(), 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }
}

int merge_and_report(const std::vector<std::string>& shard_paths,
                     const std::string& metrics_path, bool quiet) {
  std::vector<sim::ShardFile> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    shards.push_back(sim::read_shard_file(path));
  }
  const sim::MergedShards merged = sim::merge_shard_files(shards);
  if (!quiet) print_merged_summary(merged);
  return write_merged_report(merged, metrics_path, quiet) ? 0 : 1;
}

// -------------------------------------------------------------------------
// local run

/// Fork/execs one local shard worker of `binary`, stdout+stderr to
/// `log_path`.  Returns -1 when fork fails.
pid_t spawn_local_shard(const std::string& binary, const sim::ShardSpec& spec,
                        const std::string& shard_path,
                        const std::string& log_path) {
  const std::string shard_flag = "--shard=" + sim::format_shard_spec(spec);
  const std::string out_flag = "--shard-out=" + shard_path;
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("cts_simd: fork");
    return -1;
  }
  if (pid == 0) {
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
            out_flag.c_str(), "--quiet", static_cast<char*>(nullptr));
    std::perror("cts_simd: execl");
    std::_Exit(127);
  }
  return pid;
}

int run_workers(const std::string& binary, std::size_t shard_count,
                const std::string& out_dir, const std::string& metrics_path,
                bool keep_shards, double timeout_s, bool quiet) {
  if (::access(binary.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "cts_simd: %s is not an executable\n",
                 binary.c_str());
    return 2;
  }
  cu::make_dirs(out_dir);  // throws up front, naming the path

  std::vector<std::string> shard_paths;
  std::vector<std::string> log_paths;
  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::string tag = std::to_string(i);
    shard_paths.push_back(out_dir + "/shard_" + tag + ".json");
    log_paths.push_back(out_dir + "/shard_" + tag + ".log");
    const pid_t pid = spawn_local_shard(binary, {i, shard_count},
                                        shard_paths.back(), log_paths.back());
    if (pid < 0) return 1;
    pids.push_back(pid);
    if (!quiet) {
      std::printf("[worker %zu/%zu: pid %d, log %s]\n", i, shard_count,
                  static_cast<int>(pid), log_paths.back().c_str());
    }
  }

  // One shared deadline across all workers; a straggler past it is killed
  // and reported (the old code blocked in waitpid forever).
  const double deadline = monotonic_s() + timeout_s;
  bool failed = false;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const double remaining =
        timeout_s <= 0 ? -1.0 : std::max(0.0, deadline - monotonic_s());
    const cu::WaitOutcome outcome = cu::wait_child(pids[i], remaining);
    if (!outcome.ok()) {
      std::fprintf(stderr, "cts_simd: worker %zu %s (see %s)\n", i,
                   outcome.describe().c_str(), log_paths[i].c_str());
      failed = true;
    }
  }
  if (failed) return 1;

  const int rc = merge_and_report(shard_paths, metrics_path, quiet);
  if (rc == 0 && !keep_shards) {
    for (const std::string& path : shard_paths) ::unlink(path.c_str());
  }
  return rc;
}

// -------------------------------------------------------------------------
// networked run (--workers=)

struct NetRunOptions {
  std::string bench_id;
  std::size_t shards = 2;
  std::string out_dir;
  std::string metrics_path;
  std::string bench_dir;              ///< local-fallback binary directory
  std::string dispatch_metrics_path;  ///< "" = off
  std::string trace_path;             ///< "" = off
  std::vector<net::Endpoint> workers;
  double job_timeout_s = 300;
  int retries = 3;
  std::string profile_path;            ///< cts.profile.v1 JSON ("" = off)
  std::string profile_folded;          ///< collapsed-stack text ("" = off)
  int profile_hz = 97;
  std::string profile_backend = "thread";
  bool keep_shards = false;
  bool quiet = false;
};

/// Arms the dispatcher's sampling profiler when --profile/--profile-folded
/// asked for one, and flushes it on scope exit — the early error returns in
/// run_networked still leave a usable profile behind.
class DispatchProfile {
 public:
  explicit DispatchProfile(const NetRunOptions& opt) : opt_(opt) {
    if (opt_.profile_path.empty() && opt_.profile_folded.empty()) return;
    obs::Profiler::Options popts;
    popts.hz = opt_.profile_hz;
    popts.backend = opt_.profile_backend;
    obs::Profiler::global().start(popts);
    started_ = true;
  }
  ~DispatchProfile() {
    if (!started_) return;
    obs::Profiler& prof = obs::Profiler::global();
    prof.stop();
    if (!opt_.profile_path.empty() && !prof.write(opt_.profile_path)) {
      std::fprintf(stderr, "cts_simd: cannot write profile %s\n",
                   opt_.profile_path.c_str());
    }
    if (!opt_.profile_folded.empty() &&
        !prof.write_folded_file(opt_.profile_folded)) {
      std::fprintf(stderr, "cts_simd: cannot write folded profile %s\n",
                   opt_.profile_folded.c_str());
    }
    obs::log_info("profile.write",
                  {{"samples", prof.sample_count()},
                   {"path", opt_.profile_path.empty() ? opt_.profile_folded
                                                      : opt_.profile_path}});
    if (!opt_.quiet) {
      std::printf("[profile (%llu samples) written to %s]\n",
                  static_cast<unsigned long long>(prof.sample_count()),
                  (opt_.profile_path.empty() ? opt_.profile_folded
                                             : opt_.profile_path)
                      .c_str());
    }
  }
  DispatchProfile(const DispatchProfile&) = delete;
  DispatchProfile& operator=(const DispatchProfile&) = delete;

 private:
  const NetRunOptions& opt_;
  bool started_ = false;
};

/// Consecutive failures after which a worker endpoint is declared down and
/// its dispatch thread exits (remaining work is reassigned or falls back).
constexpr int kWorkerDownAfter = 3;

/// Shared dispatch state; every field is guarded by `mu`.
struct DispatchState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> queue;        ///< shards awaiting a worker
  std::vector<int> attempts;            ///< per-shard dispatch attempts
  std::vector<int> last_failed_on;      ///< worker of the last failure, -1
  std::vector<std::string> payloads;    ///< per-shard cts.shard.v1 text
  std::vector<std::size_t> fallback;    ///< shards left for local fork/exec
  /// Per worker endpoint: that worker's job spans, already clock-corrected
  /// onto the dispatcher timeline — the merged trace's per-worker lanes.
  std::vector<std::vector<obs::TraceEvent>> worker_spans;
  std::size_t done = 0;
  std::size_t live_workers = 0;

  bool settled(std::size_t n) const { return done + fallback.size() == n; }

  /// A requeued shard prefers a worker other than the one it just failed
  /// on (that is what makes failure reassignment an actual reassignment);
  /// the last live worker takes anything.  Returns the queue position of a
  /// shard worker `w` may take, or queue.size() when there is none.
  std::size_t claimable(std::size_t w) const {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (live_workers <= 1 ||
          last_failed_on[queue[i]] != static_cast<int>(w)) {
        return i;
      }
    }
    return queue.size();
  }
};

/// The worker-side obs capture of one successful job, already mapped onto
/// the dispatcher's clock.
struct JobObsCapture {
  bool has = false;
  std::int64_t offset_us = 0;  ///< worker-minus-dispatcher clock offset
  obs::MetricsShard metrics;   ///< the job's metrics delta
  std::vector<obs::TraceEvent> spans;  ///< ts already offset-corrected
};

/// Runs one job against one worker; returns the shard payload via *out and
/// the job's obs capture via *obs_out.  The send/receive timestamps around
/// the exchange are the t0/t3 of the NTP-style offset estimate (see
/// trace_merge.hpp); the worker supplies t1/t2 inside the reply.
bool dispatch_one(const net::Endpoint& ep, const net::JobRequest& job,
                  double job_timeout_s, std::string* out, std::string* error,
                  JobObsCapture* obs_out) {
  try {
    obs::ScopedSpan span("simd.net.job");
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    net::Socket sock =
        net::connect_to(ep, std::min(10.0, job_timeout_s));
    const std::int64_t t0 = recorder.now_us();
    net::send_frame(sock, net::write_job_json(job), 30.0);
    const std::string reply = net::recv_frame(sock, job_timeout_s);
    const std::int64_t t3 = recorder.now_us();
    const net::JobResult result = net::parse_job_result(reply);
    if (!result.ok) {
      *error = ep.str() + ": " + result.error;
      return false;
    }
    if (result.has_obs) {
      obs_out->has = true;
      obs_out->offset_us = obs::estimate_clock_offset_us(
          t0, result.obs.recv_us, result.obs.send_us, t3);
      obs_out->metrics = result.obs.metrics;
      obs_out->spans = result.obs.spans;
      for (obs::TraceEvent& e : obs_out->spans) e.ts_us -= obs_out->offset_us;
    }
    *out = result.shard_json;
    return true;
  } catch (const std::exception& e) {
    *error = ep.str() + ": " + e.what();
    return false;
  }
}

/// One dispatch thread: pulls shards off the queue, runs them on `ep`,
/// requeues failures (bounded per-shard attempts), and declares the worker
/// down after kWorkerDownAfter consecutive failures.
void worker_thread(const net::Endpoint& ep, std::size_t worker_index,
                   const NetRunOptions& opt, const net::RetryPolicy& policy,
                   std::vector<std::pair<std::string, std::string>> env,
                   DispatchState* st, obs::MetricsRegistry* dispatch) {
  const std::string wtag = "simd.net.worker." + std::to_string(worker_index);
  int consecutive_failures = 0;
  for (;;) {
    std::size_t shard = 0;
    int attempt = 0;
    {
      std::unique_lock<std::mutex> lk(st->mu);
      std::size_t pos = 0;
      st->cv.wait(lk, [&] {
        pos = st->claimable(worker_index);
        return pos < st->queue.size() || st->settled(opt.shards);
      });
      if (pos >= st->queue.size()) return;  // everything done or given up
      shard = st->queue[pos];
      st->queue.erase(st->queue.begin() +
                      static_cast<std::ptrdiff_t>(pos));
      attempt = ++st->attempts[shard];
    }

    const double backoff = policy.delay_s(attempt);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      dispatch->add("simd.net.retries");
    }

    net::JobRequest job;
    job.bench_id = opt.bench_id;
    job.shard_index = shard;
    job.shard_count = opt.shards;
    job.env = std::move(env);
    job.timeout_s = opt.job_timeout_s;
    job.attempt = attempt;
    const double start = monotonic_s();
    std::string payload;
    std::string error;
    JobObsCapture capture;
    const bool ok =
        dispatch_one(ep, job, opt.job_timeout_s, &payload, &error, &capture);
    env = std::move(job.env);  // reused across this thread's jobs
    const double wall_ms = (monotonic_s() - start) * 1e3;
    dispatch->observe("simd.net.job_wall_ms", wall_ms);
    dispatch->observe(wtag + ".wall_ms", wall_ms);
    // Log-histogram twins carry the percentile view (p50..p999) that the
    // fixed-edge histograms above cannot: dispatch RPC latency spans orders
    // of magnitude between a warm loopback worker and a retried WAN job.
    dispatch->observe_log("simd.net.job_wall_ms", wall_ms);
    dispatch->observe_log(wtag + ".wall_ms", wall_ms);
    dispatch->add("simd.net.jobs_dispatched");
    if (capture.has) {
      // The worker's per-job metrics delta joins the dispatch registry —
      // never the global one, which must stay diff-identical to a
      // single-process run.
      dispatch->merge(capture.metrics);
      dispatch->gauge(wtag + ".clock_offset_us",
                      static_cast<double>(capture.offset_us));
    }

    std::unique_lock<std::mutex> lk(st->mu);
    if (ok) {
      st->payloads[shard] = std::move(payload);
      ++st->done;
      consecutive_failures = 0;
      dispatch->add("simd.net.jobs_ok");
      dispatch->add(wtag + ".ok");
      if (capture.has) {
        st->worker_spans[worker_index].insert(
            st->worker_spans[worker_index].end(), capture.spans.begin(),
            capture.spans.end());
      }
      obs::log_info("job.ok",
                    {{"shard", static_cast<std::uint64_t>(shard)},
                     {"worker", ep.str()},
                     {"attempt", attempt},
                     {"wall_ms", wall_ms},
                     {"clock_offset_us",
                      static_cast<std::int64_t>(capture.offset_us)}});
      if (!opt.quiet) {
        std::printf("[shard %zu/%zu done on %s in %.0f ms]\n", shard,
                    opt.shards, ep.str().c_str(), wall_ms);
      }
    } else {
      dispatch->add("simd.net.jobs_failed");
      dispatch->add(wtag + ".fail");
      ++consecutive_failures;
      obs::log_warn("job.fail",
                    {{"shard", static_cast<std::uint64_t>(shard)},
                     {"worker", ep.str()},
                     {"attempt", attempt},
                     {"error", error}});
      std::fprintf(stderr,
                   "cts_simd: shard %zu attempt %d failed on %s: %s\n",
                   shard, attempt, ep.str().c_str(), error.c_str());
      st->last_failed_on[shard] = static_cast<int>(worker_index);
      if (st->attempts[shard] >= policy.max_attempts) {
        st->fallback.push_back(shard);  // retry budget exhausted
      } else {
        st->queue.push_back(shard);  // reassigned by claimable()
      }
    }
    const bool worker_down = consecutive_failures >= kWorkerDownAfter;
    if (worker_down) --st->live_workers;
    lk.unlock();
    st->cv.notify_all();
    if (worker_down) {
      dispatch->add("simd.net.workers_down");
      obs::log_error("worker.down",
                     {{"worker", ep.str()},
                      {"consecutive_failures", consecutive_failures}});
      std::fprintf(stderr,
                   "cts_simd: worker %s down after %d consecutive "
                   "failures\n",
                   ep.str().c_str(), consecutive_failures);
      return;
    }
  }
}

int run_networked(const NetRunOptions& opt) {
  // The registry doubles as the allowlist on this side too: an unknown id
  // fails here (exit 2) before any network traffic.
  const bench::BenchSpec& spec = bench::spec(opt.bench_id);
  cu::make_dirs(opt.out_dir);
  if (!opt.trace_path.empty()) obs::TraceRecorder::global().enable();
  DispatchProfile profile(opt);
  std::string worker_list;
  for (const net::Endpoint& ep : opt.workers) {
    if (!worker_list.empty()) worker_list += ",";
    worker_list += ep.str();
  }
  obs::log_info("run.start",
                {{"bench", opt.bench_id},
                 {"shards", static_cast<std::uint64_t>(opt.shards)},
                 {"workers", worker_list}});

  // Forward this process's REPRO_* scale inside the job so every worker —
  // and a local fallback child, which inherits the environment directly —
  // runs at the same scale.
  std::vector<std::pair<std::string, std::string>> env;
  for (const std::string& name : net::job_env_allowlist()) {
    const char* value = std::getenv(name.c_str());
    if (value != nullptr && value[0] != '\0') env.emplace_back(name, value);
  }

  net::RetryPolicy policy;
  policy.max_attempts = opt.retries;

  // Dispatch metrics live in their own registry, NOT the global one: the
  // global registry receives the merged shard metrics, and polluting it
  // with dispatch counters would break `cts_simd diff` bit-identity
  // against a single-process run.
  obs::MetricsRegistry dispatch;
  dispatch.gauge("simd.net.workers", static_cast<double>(opt.workers.size()));
  dispatch.gauge("simd.net.shards", static_cast<double>(opt.shards));

  DispatchState st;
  st.attempts.assign(opt.shards, 0);
  st.last_failed_on.assign(opt.shards, -1);
  st.payloads.assign(opt.shards, std::string());
  st.worker_spans.assign(opt.workers.size(), {});
  st.live_workers = opt.workers.size();
  for (std::size_t i = 0; i < opt.shards; ++i) st.queue.push_back(i);

  {
    obs::ScopedSpan span("simd.net.dispatch");
    std::vector<std::thread> threads;
    threads.reserve(opt.workers.size());
    for (std::size_t w = 0; w < opt.workers.size(); ++w) {
      threads.emplace_back(worker_thread, opt.workers[w], w, std::cref(opt),
                           std::cref(policy), env, &st, &dispatch);
    }
    for (std::thread& t : threads) t.join();
  }

  // Whatever the workers could not finish — retry budgets exhausted, or
  // every endpoint down with shards still queued — runs locally.
  std::vector<std::size_t> local;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    local = st.fallback;
    for (const std::size_t shard : st.queue) local.push_back(shard);
  }
  std::vector<std::string> shard_paths(opt.shards);
  for (std::size_t i = 0; i < opt.shards; ++i) {
    shard_paths[i] = opt.out_dir + "/shard_" + std::to_string(i) + ".json";
  }
  for (std::size_t i = 0; i < opt.shards; ++i) {
    if (st.payloads[i].empty()) continue;
    std::ofstream out(shard_paths[i], std::ios::binary);
    out << st.payloads[i];
    if (!out) {
      std::fprintf(stderr, "cts_simd: could not write %s\n",
                   shard_paths[i].c_str());
      return 1;
    }
  }

  if (!local.empty()) {
    const std::string binary =
        (fs::path(opt.bench_dir) / spec.binary).string();
    if (::access(binary.c_str(), X_OK) != 0) {
      std::fprintf(stderr,
                   "cts_simd: %zu shard(s) undispatched and the local "
                   "fallback binary %s is not executable\n",
                   local.size(), binary.c_str());
      return 1;
    }
    dispatch.add("simd.net.local_fallback_shards",
                 static_cast<std::uint64_t>(local.size()));
    obs::log_warn("fallback",
                  {{"shards", static_cast<std::uint64_t>(local.size())}});
    if (!opt.quiet) {
      std::printf("[falling back to local fork/exec for %zu shard(s)]\n",
                  local.size());
    }
    obs::ScopedSpan span("simd.net.local_fallback");
    std::vector<pid_t> pids;
    std::vector<std::string> logs;
    for (const std::size_t shard : local) {
      logs.push_back(opt.out_dir + "/shard_" + std::to_string(shard) +
                     ".log");
      const pid_t pid = spawn_local_shard(binary, {shard, opt.shards},
                                          shard_paths[shard], logs.back());
      if (pid < 0) return 1;
      pids.push_back(pid);
    }
    const double deadline = monotonic_s() + opt.job_timeout_s;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      const double remaining = std::max(0.0, deadline - monotonic_s());
      const cu::WaitOutcome outcome = cu::wait_child(pids[i], remaining);
      if (!outcome.ok()) {
        if (outcome.kind == cu::WaitOutcome::Kind::kTimeout ||
            outcome.kind == cu::WaitOutcome::Kind::kSignaled) {
          // Flight recorder: everything the dispatcher logged (any level)
          // right up to the kill, for the post-mortem.
          const std::string flight_path =
              opt.out_dir + "/fallback_flight.jsonl";
          if (obs::EventLog::global().dump_ring_to(flight_path)) {
            obs::log_error("fallback.flight_recorder",
                           {{"shard",
                             static_cast<std::uint64_t>(local[i])},
                            {"path", flight_path},
                            {"outcome", outcome.describe()}});
          }
        }
        std::fprintf(stderr, "cts_simd: local fallback shard %zu %s (see "
                             "%s)\n",
                     local[i], outcome.describe().c_str(), logs[i].c_str());
        return 1;
      }
    }
  }

  const int rc = merge_and_report(shard_paths, opt.metrics_path, opt.quiet);

  if (!opt.dispatch_metrics_path.empty()) {
    obs::RunReport report;
    report.set("run_id", "cts_simd_dispatch");
    report.set("tool", "cts_simd");
    report.set("mode", "workers");
    report.set("bench", opt.bench_id);
    report.set("workers", worker_list);
    report.set("shards", static_cast<std::uint64_t>(opt.shards));
    report.set("retries", static_cast<std::int64_t>(opt.retries));
    report.set("job_timeout_s", opt.job_timeout_s);
    if (!report.write(opt.dispatch_metrics_path, dispatch)) {
      std::fprintf(stderr, "cts_simd: could not write dispatch metrics to "
                           "%s\n",
                   opt.dispatch_metrics_path.c_str());
    } else if (!opt.quiet) {
      std::printf("[dispatch metrics written to %s]\n",
                  opt.dispatch_metrics_path.c_str());
    }
  }
  if (!opt.trace_path.empty()) {
    // One merged Chrome trace: the dispatcher's own spans in lane pid 1,
    // then one lane per worker with that worker's job spans, already
    // clock-corrected onto the dispatcher timeline (per-job NTP offsets
    // were applied at receive time, so every lane's offset here is 0).
    std::vector<obs::ProcessTrace> lanes;
    lanes.push_back(
        {"cts_simd dispatcher", 1, 0, obs::TraceRecorder::global().events()});
    for (std::size_t w = 0; w < opt.workers.size(); ++w) {
      std::vector<obs::TraceEvent> spans;
      {
        std::lock_guard<std::mutex> lk(st.mu);
        spans = st.worker_spans[w];
      }
      lanes.push_back({"worker " + opt.workers[w].str(),
                       static_cast<int>(2 + w), 0, std::move(spans)});
    }
    if (!obs::write_merged_trace(opt.trace_path, lanes)) {
      std::fprintf(stderr, "cts_simd: could not write trace to %s\n",
                   opt.trace_path.c_str());
    } else if (!opt.quiet) {
      std::printf("[merged trace (%zu lane(s)) written to %s]\n",
                  lanes.size(), opt.trace_path.c_str());
    }
  }
  obs::log_info("run.done",
                {{"bench", opt.bench_id},
                 {"rc", rc},
                 {"fallback_shards",
                  static_cast<std::uint64_t>(local.size())}});

  if (rc == 0 && !opt.keep_shards) {
    for (const std::string& path : shard_paths) ::unlink(path.c_str());
  }
  return rc;
}

// -------------------------------------------------------------------------
// diff

/// The metrics section of a run report, or the document itself when it is
/// already a bare metrics object.
const obs::JsonValue& metrics_of(const obs::JsonValue& doc) {
  const obs::JsonValue* metrics = doc.find("metrics");
  return metrics != nullptr ? *metrics : doc;
}

bool skipped_gauge(const std::string& name) {
  return name == "sim.threads" || name == "sim.shard.index" ||
         name == "sim.shard.count";
}

bool close_rel(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= std::max(1e-12, 1e-9 * scale);
}

/// Reports every difference; returns the number found.
std::size_t diff_metrics(const obs::JsonValue& a, const obs::JsonValue& b,
                         bool quiet) {
  std::size_t differences = 0;
  const auto report = [&](const std::string& what) {
    ++differences;
    if (!quiet) std::printf("DIFF: %s\n", what.c_str());
  };

  const auto keys_of = [](const obs::JsonValue& section) {
    std::vector<std::string> keys;
    for (const auto& [name, value] : section.members) {
      (void)value;
      keys.push_back(name);
    }
    return keys;
  };
  // A report with no such section at all diffs as an empty section: every
  // entry present on the other side is reported as a difference (exit 1),
  // instead of at() throwing and turning a comparison into exit 2.
  static const obs::JsonValue kEmptySection = [] {
    obs::JsonValue v;
    v.type = obs::JsonValue::Type::kObject;
    return v;
  }();
  const auto for_union = [&](const char* section,
                             const auto& visit) {
    const obs::JsonValue* pa = a.find(section);
    const obs::JsonValue* pb = b.find(section);
    const obs::JsonValue& sa = pa != nullptr ? *pa : kEmptySection;
    const obs::JsonValue& sb = pb != nullptr ? *pb : kEmptySection;
    std::vector<std::string> keys = keys_of(sa);
    for (const std::string& k : keys_of(sb)) {
      bool seen = false;
      for (const std::string& have : keys) seen = seen || have == k;
      if (!seen) keys.push_back(k);
    }
    for (const std::string& k : keys) visit(k, sa.find(k), sb.find(k));
  };

  for_union("counters", [&](const std::string& name, const obs::JsonValue* va,
                            const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("counter " + name + " present in only one report");
    } else if (va->as_number() != vb->as_number()) {
      report("counter " + name + ": " + std::to_string(va->as_number()) +
             " vs " + std::to_string(vb->as_number()));
    }
  });

  for_union("sums", [&](const std::string& name, const obs::JsonValue* va,
                        const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("sum " + name + " present in only one report");
    } else if (!close_rel(va->as_number(), vb->as_number())) {
      report("sum " + name + ": " + std::to_string(va->as_number()) + " vs " +
             std::to_string(vb->as_number()));
    }
  });

  for_union("gauges", [&](const std::string& name, const obs::JsonValue* va,
                          const obs::JsonValue* vb) {
    if (skipped_gauge(name)) return;
    if (va == nullptr || vb == nullptr) {
      report("gauge " + name + " present in only one report");
    } else if (va->as_number() != vb->as_number()) {
      report("gauge " + name + ": " + std::to_string(va->as_number()) +
             " vs " + std::to_string(vb->as_number()));
    }
  });

  for_union("histograms", [&](const std::string& name,
                              const obs::JsonValue* va,
                              const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("histogram " + name + " present in only one report");
      return;
    }
    if (va->at("count").as_number() != vb->at("count").as_number()) {
      report("histogram " + name + " count: " +
             std::to_string(va->at("count").as_number()) + " vs " +
             std::to_string(vb->at("count").as_number()));
      return;
    }
    if (name.find("wall_ms") != std::string::npos) return;  // timings
    if (va->at("mean").as_number() != vb->at("mean").as_number()) {
      report("histogram " + name + " mean differs");
    }
  });

  for_union("log_histograms", [&](const std::string& name,
                                  const obs::JsonValue* va,
                                  const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("log_histogram " + name + " present in only one report");
      return;
    }
    if (va->at("count").as_number() != vb->at("count").as_number()) {
      report("log_histogram " + name + " count: " +
             std::to_string(va->at("count").as_number()) + " vs " +
             std::to_string(vb->at("count").as_number()));
      return;
    }
    // Same rule as histograms: latency distributions (all current log
    // histograms are millisecond timings) compare by count only.
    if (name.find("_ms") != std::string::npos) return;
    if (va->at("mean").as_number() != vb->at("mean").as_number()) {
      report("log_histogram " + name + " mean differs");
    }
  });

  return differences;
}

int diff_reports(const std::string& path_a, const std::string& path_b,
                 bool quiet) {
  const obs::JsonValue a = obs::json_parse(cu::read_text_file(path_a));
  const obs::JsonValue b = obs::json_parse(cu::read_text_file(path_b));
  const std::size_t differences =
      diff_metrics(metrics_of(a), metrics_of(b), quiet);
  if (differences == 0) {
    if (!quiet) std::printf("reports match\n");
    return 0;
  }
  std::fprintf(stderr, "cts_simd: %zu difference(s) between %s and %s\n",
               differences, path_a.c_str(), path_b.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kSimdFlags));
    const bool quiet = flags.get_bool("quiet", false);

    // Structured events are opt-in for the orchestrator: --log appends
    // cts.events.v1 JSONL (stdout stays the human-facing progress channel).
    const std::string log_path = flags.get_string("log", "");
    if (!log_path.empty()) obs::EventLog::global().open(log_path);
    obs::EventLog::global().set_min_level(
        obs::parse_log_level(flags.get_string("log-level", "info")));
    const std::vector<std::string> args = positionals(argc, argv);
    if (args.empty()) {
      usage();
      return 2;
    }
    const std::string& command = args.front();

    if (command == "run") {
      if (args.size() != 2) {
        usage();
        return 2;
      }
      const std::int64_t shards = flags.get_int("shards", 2);
      if (shards < 1) {
        std::fprintf(stderr, "cts_simd: --shards must be >= 1\n");
        return 2;
      }
      if (flags.has("workers")) {
        NetRunOptions opt;
        opt.bench_id = args[1];
        opt.shards = static_cast<std::size_t>(shards);
        opt.out_dir = flags.get_string("out-dir", "simd_out");
        opt.metrics_path = flags.get_string("metrics", "simd_metrics.json");
        opt.keep_shards = flags.get_bool("keep-shards", false);
        opt.quiet = quiet;
        opt.workers =
            net::parse_worker_list(flags.get_string("workers", ""));
        opt.job_timeout_s = flags.get_double("job-timeout", 300.0);
        if (opt.job_timeout_s <= 0) {
          std::fprintf(stderr, "cts_simd: --job-timeout must be > 0\n");
          return 2;
        }
        const std::int64_t retries = flags.get_int("retries", 3);
        if (retries < 1) {
          std::fprintf(stderr, "cts_simd: --retries must be >= 1\n");
          return 2;
        }
        opt.retries = static_cast<int>(retries);
        opt.dispatch_metrics_path =
            flags.get_string("dispatch-metrics", "");
        opt.trace_path = flags.get_string("trace", "");
        opt.profile_path = flags.get_string("profile", "");
        opt.profile_folded = flags.get_string("profile-folded", "");
        opt.profile_hz = static_cast<int>(flags.get_int("profile-hz", 97));
        opt.profile_backend = flags.get_string("profile-backend", "thread");
        opt.bench_dir = flags.get_string("bench-dir", "");
        if (opt.bench_dir.empty()) {
          const char* env = std::getenv("CTS_BENCH_DIR");
          if (env != nullptr && env[0] != '\0') {
            opt.bench_dir = env;
          } else {
            opt.bench_dir =
                (fs::path(argv[0]).parent_path() / ".." / "bench").string();
          }
        }
        return run_networked(opt);
      }
      return run_workers(args[1], static_cast<std::size_t>(shards),
                         flags.get_string("out-dir", "simd_out"),
                         flags.get_string("metrics", "simd_metrics.json"),
                         flags.get_bool("keep-shards", false),
                         flags.get_double("timeout", 0.0), quiet);
    }
    if (command == "merge") {
      if (args.size() < 2) {
        usage();
        return 2;
      }
      return merge_and_report(
          std::vector<std::string>(args.begin() + 1, args.end()),
          flags.get_string("metrics", "simd_metrics.json"), quiet);
    }
    if (command == "diff") {
      if (args.size() != 3) {
        usage();
        return 2;
      }
      return diff_reports(args[1], args[2], quiet);
    }
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_simd: %s\n", e.what());
    return 2;
  }
}
