// cts-simd: multi-process shard orchestrator for the replication benches.
//
//   cts_simd run BENCH_BINARY [--shards=N] [--out-dir=DIR] [--metrics=PATH]
//                             [--keep-shards] [--quiet]
//   cts_simd merge SHARD.json... [--metrics=PATH] [--quiet]
//   cts_simd diff REPORT_A.json REPORT_B.json [--quiet]
//
// `run` fork/execs N worker shards of BENCH_BINARY (each gets
// --shard=i/N --shard-out=<dir>/shard_i.json --quiet, stdout/stderr to
// <dir>/shard_i.log), waits for all of them, merges the shard files and
// writes the merged --metrics run report.  Replication scale still comes
// from the environment (REPRO_FULL / REPRO_REPS / REPRO_FRAMES), which the
// workers inherit.  `merge` does the same for pre-written cts.shard.v1
// files (e.g. collected from separate machines).  `diff` compares the
// metrics sections of two run reports the way a shard merge can match a
// single-process run: counters exactly, sums to 1e-9 relative tolerance
// (Kahan summation is order-sensitive across shard boundaries), gauges
// exactly except the layout-dependent {sim.threads, sim.shard.index,
// sim.shard.count}, and histograms by count only when the name contains
// "wall_ms" (timings are never reproducible).
//
// Exit codes: 0 success / reports match, 1 worker failure / merge error /
// reports differ, 2 usage or parse errors.
//
// Note: pass value flags in --key=value form; positional arguments that
// follow a bare boolean flag would otherwise be consumed as its value.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/run_report.hpp"
#include "cts/sim/replication.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace obs = cts::obs;
namespace sim = cts::sim;
namespace cu = cts::util;

namespace {

void usage() {
  std::printf(
      "usage: cts_simd run BENCH_BINARY [--shards=N] [--out-dir=DIR]\n"
      "                    [--metrics=PATH] [--keep-shards] [--quiet]\n"
      "       cts_simd merge SHARD.json... [--metrics=PATH] [--quiet]\n"
      "       cts_simd diff REPORT_A.json REPORT_B.json [--quiet]\n\n"
      "Scale comes from the environment the workers inherit: REPRO_FULL=1,\n"
      "REPRO_REPS, REPRO_FRAMES.\n"
      "Exit codes: 0 success/match, 1 failure/mismatch, 2 usage or parse "
      "error.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// -------------------------------------------------------------------------
// merge + report emission (shared by `run` and `merge`)

/// Folds the merged shard set into this (otherwise idle) process's global
/// registry and writes the same {"config":...,"metrics":...} run report a
/// single-process bench run with --metrics would produce.
bool write_merged_report(const sim::MergedShards& merged,
                         const std::string& metrics_path, bool quiet) {
  obs::MetricsRegistry::global().merge(merged.metrics);
  obs::RunReport report;
  report.set("run_id", "cts_simd");
  report.set("tool", "cts_simd");
  report.set("shard_count", static_cast<std::uint64_t>(merged.shard_count));
  report.set("experiments",
             static_cast<std::uint64_t>(merged.experiments.size()));
  if (!merged.experiments.empty()) {
    const sim::ReplicationConfig& config = merged.experiments.front().config;
    report.set("replications", static_cast<std::uint64_t>(config.replications));
    report.set("frames_per_replication", config.frames_per_replication);
    report.set("warmup_frames", config.warmup_frames);
    report.set("master_seed", config.master_seed);
  }
  if (!report.write(metrics_path)) {
    std::fprintf(stderr, "cts_simd: could not write metrics to %s\n",
                 metrics_path.c_str());
    return false;
  }
  if (!quiet) {
    std::printf("[merged metrics written to %s]\n", metrics_path.c_str());
  }
  return true;
}

void print_merged_summary(const sim::MergedShards& merged) {
  std::printf("merged %zu shard(s), %zu experiment(s)\n", merged.shard_count,
              merged.experiments.size());
  for (const sim::MergedExperiment& experiment : merged.experiments) {
    std::printf("\n%s: %zu reps x %llu frames, seed %llu\n",
                experiment.label.c_str(), experiment.config.replications,
                static_cast<unsigned long long>(
                    experiment.config.frames_per_replication),
                static_cast<unsigned long long>(
                    experiment.config.master_seed));
    cu::TextTable table({"B (cells)", "pooled CLR", "CI low", "CI high"});
    for (const sim::ClrEstimate& est : experiment.result.clr) {
      table.add_row({cu::format_fixed(est.buffer_cells, 0),
                     cu::format_sci(est.pooled_clr, 4),
                     cu::format_sci(est.clr.low(), 4),
                     cu::format_sci(est.clr.high(), 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }
}

int merge_and_report(const std::vector<std::string>& shard_paths,
                     const std::string& metrics_path, bool quiet) {
  std::vector<sim::ShardFile> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    shards.push_back(sim::read_shard_file(path));
  }
  const sim::MergedShards merged = sim::merge_shard_files(shards);
  if (!quiet) print_merged_summary(merged);
  return write_merged_report(merged, metrics_path, quiet) ? 0 : 1;
}

// -------------------------------------------------------------------------
// run

int run_workers(const std::string& binary, std::size_t shard_count,
                const std::string& out_dir, const std::string& metrics_path,
                bool keep_shards, bool quiet) {
  if (::access(binary.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "cts_simd: %s is not an executable\n",
                 binary.c_str());
    return 2;
  }
  ::mkdir(out_dir.c_str(), 0755);  // best-effort; open() reports failures

  std::vector<std::string> shard_paths;
  std::vector<std::string> log_paths;
  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::string tag = std::to_string(i);
    shard_paths.push_back(out_dir + "/shard_" + tag + ".json");
    log_paths.push_back(out_dir + "/shard_" + tag + ".log");
    const std::string shard_flag =
        "--shard=" + sim::format_shard_spec({i, shard_count});
    const std::string out_flag = "--shard-out=" + shard_paths.back();

    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("cts_simd: fork");
      return 1;
    }
    if (pid == 0) {
      const int fd =
          ::open(log_paths.back().c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
      ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
              out_flag.c_str(), "--quiet", static_cast<char*>(nullptr));
      std::perror("cts_simd: execl");
      std::_Exit(127);
    }
    pids.push_back(pid);
    if (!quiet) {
      std::printf("[worker %zu/%zu: pid %d, log %s]\n", i, shard_count,
                  static_cast<int>(pid), log_paths.back().c_str());
    }
  }

  bool failed = false;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    if (::waitpid(pids[i], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "cts_simd: worker %zu failed (see %s)\n", i,
                   log_paths[i].c_str());
      failed = true;
    }
  }
  if (failed) return 1;

  const int rc = merge_and_report(shard_paths, metrics_path, quiet);
  if (rc == 0 && !keep_shards) {
    for (const std::string& path : shard_paths) ::unlink(path.c_str());
  }
  return rc;
}

// -------------------------------------------------------------------------
// diff

/// The metrics section of a run report, or the document itself when it is
/// already a bare metrics object.
const obs::JsonValue& metrics_of(const obs::JsonValue& doc) {
  const obs::JsonValue* metrics = doc.find("metrics");
  return metrics != nullptr ? *metrics : doc;
}

bool skipped_gauge(const std::string& name) {
  return name == "sim.threads" || name == "sim.shard.index" ||
         name == "sim.shard.count";
}

bool close_rel(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= std::max(1e-12, 1e-9 * scale);
}

/// Reports every difference; returns the number found.
std::size_t diff_metrics(const obs::JsonValue& a, const obs::JsonValue& b,
                         bool quiet) {
  std::size_t differences = 0;
  const auto report = [&](const std::string& what) {
    ++differences;
    if (!quiet) std::printf("DIFF: %s\n", what.c_str());
  };

  const auto keys_of = [](const obs::JsonValue& section) {
    std::vector<std::string> keys;
    for (const auto& [name, value] : section.members) {
      (void)value;
      keys.push_back(name);
    }
    return keys;
  };
  const auto for_union = [&](const char* section,
                             const auto& visit) {
    const obs::JsonValue& sa = a.at(section);
    const obs::JsonValue& sb = b.at(section);
    std::vector<std::string> keys = keys_of(sa);
    for (const std::string& k : keys_of(sb)) {
      bool seen = false;
      for (const std::string& have : keys) seen = seen || have == k;
      if (!seen) keys.push_back(k);
    }
    for (const std::string& k : keys) visit(k, sa.find(k), sb.find(k));
  };

  for_union("counters", [&](const std::string& name, const obs::JsonValue* va,
                            const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("counter " + name + " present in only one report");
    } else if (va->as_number() != vb->as_number()) {
      report("counter " + name + ": " + std::to_string(va->as_number()) +
             " vs " + std::to_string(vb->as_number()));
    }
  });

  for_union("sums", [&](const std::string& name, const obs::JsonValue* va,
                        const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("sum " + name + " present in only one report");
    } else if (!close_rel(va->as_number(), vb->as_number())) {
      report("sum " + name + ": " + std::to_string(va->as_number()) + " vs " +
             std::to_string(vb->as_number()));
    }
  });

  for_union("gauges", [&](const std::string& name, const obs::JsonValue* va,
                          const obs::JsonValue* vb) {
    if (skipped_gauge(name)) return;
    if (va == nullptr || vb == nullptr) {
      report("gauge " + name + " present in only one report");
    } else if (va->as_number() != vb->as_number()) {
      report("gauge " + name + ": " + std::to_string(va->as_number()) +
             " vs " + std::to_string(vb->as_number()));
    }
  });

  for_union("histograms", [&](const std::string& name,
                              const obs::JsonValue* va,
                              const obs::JsonValue* vb) {
    if (va == nullptr || vb == nullptr) {
      report("histogram " + name + " present in only one report");
      return;
    }
    if (va->at("count").as_number() != vb->at("count").as_number()) {
      report("histogram " + name + " count: " +
             std::to_string(va->at("count").as_number()) + " vs " +
             std::to_string(vb->at("count").as_number()));
      return;
    }
    if (name.find("wall_ms") != std::string::npos) return;  // timings
    if (va->at("mean").as_number() != vb->at("mean").as_number()) {
      report("histogram " + name + " mean differs");
    }
  });

  return differences;
}

int diff_reports(const std::string& path_a, const std::string& path_b,
                 bool quiet) {
  const obs::JsonValue a = obs::json_parse(read_file(path_a));
  const obs::JsonValue b = obs::json_parse(read_file(path_b));
  const std::size_t differences =
      diff_metrics(metrics_of(a), metrics_of(b), quiet);
  if (differences == 0) {
    if (!quiet) std::printf("reports match\n");
    return 0;
  }
  std::fprintf(stderr, "cts_simd: %zu difference(s) between %s and %s\n",
               differences, path_a.c_str(), path_b.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kSimdFlags));
    const bool quiet = flags.get_bool("quiet", false);
    const std::vector<std::string> args = positionals(argc, argv);
    if (args.empty()) {
      usage();
      return 2;
    }
    const std::string& command = args.front();

    if (command == "run") {
      if (args.size() != 2) {
        usage();
        return 2;
      }
      const std::int64_t shards = flags.get_int("shards", 2);
      if (shards < 1) {
        std::fprintf(stderr, "cts_simd: --shards must be >= 1\n");
        return 2;
      }
      return run_workers(args[1], static_cast<std::size_t>(shards),
                         flags.get_string("out-dir", "simd_out"),
                         flags.get_string("metrics", "simd_metrics.json"),
                         flags.get_bool("keep-shards", false), quiet);
    }
    if (command == "merge") {
      if (args.size() < 2) {
        usage();
        return 2;
      }
      return merge_and_report(
          std::vector<std::string>(args.begin() + 1, args.end()),
          flags.get_string("metrics", "simd_metrics.json"), quiet);
    }
    if (command == "diff") {
      if (args.size() != 3) {
        usage();
        return 2;
      }
      return diff_reports(args[1], args[2], quiet);
    }
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_simd: %s\n", e.what());
    return 2;
  }
}
