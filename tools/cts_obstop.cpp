// cts-obstop: live status monitor for cts_shardd workers.
//
//   cts_obstop --workers=HOST:PORT,... [--interval=SECS] [--iterations=N]
//              [--timeout=SECS] [--quiet]
//   cts_obstop --workers=HOST:PORT,... --json
//   cts_obstop --validate FILE.json... FILE.jsonl...
//
// Polls each worker's cts.statsreq.v1 endpoint (the job port — cts_shardd
// answers stats concurrently with jobs, without touching the job budget)
// and renders one throttled table row per worker: pid, uptime, jobs in
// flight / ok / failed / retried, served stats queries, and the job wall
// time observed by the worker itself.  On a TTY the table repaints in
// place; when stdout is a pipe it appends one table per poll.
//
// --json is the scripting mode: query every worker once and print the raw
// schema-valid cts.stats.v1 replies verbatim — a single worker's object as
// is, several workers wrapped in a JSON array — then exit.  CI uses it to
// probe live daemons.
//
// --validate turns the tool into the strict checker for the observability
// artifacts: each *.jsonl argument is checked line by line as cts.events.v1
// (every line a strict RFC 8259 object with a "schema" string member), any
// other file as one strict JSON document (a merged trace or a stats reply).
//
// Exit codes: 0 success, 1 a worker could not be queried (or a validated
// file failed), 2 usage errors.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cts/net/socket.hpp"
#include "cts/net/stats.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace net = cts::net;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

void usage() {
  std::printf(
      "usage: cts_obstop --workers=HOST:PORT,... [--interval=SECS]\n"
      "                  [--iterations=N] [--timeout=SECS] [--quiet]\n"
      "       cts_obstop --workers=HOST:PORT,... --json\n"
      "       cts_obstop --validate FILE.json... FILE.jsonl...\n\n"
      "Polls cts_shardd stats endpoints (cts.statsreq.v1 on the job port)\n"
      "and renders a live per-worker status table.  --json prints each\n"
      "worker's raw cts.stats.v1 reply once and exits (scripting / CI).\n"
      "--validate strictly checks observability artifacts instead: *.jsonl\n"
      "as cts.events.v1 lines, anything else as one RFC 8259 document.\n"
      "Exit codes: 0 success, 1 query/validation failure, 2 usage error.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// -------------------------------------------------------------------------
// --validate

/// Checks one cts.events.v1 JSONL file: every non-empty line must be a
/// strict JSON object carrying a "schema" string member.
bool validate_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cts_obstop: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t events = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    if (!obs::json_parse_check(line, &error)) {
      std::fprintf(stderr, "cts_obstop: %s:%zu: %s\n", path.c_str(), lineno,
                   error.c_str());
      return false;
    }
    const obs::JsonValue doc = obs::json_parse(line);
    const obs::JsonValue* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string()) {
      std::fprintf(stderr,
                   "cts_obstop: %s:%zu: missing \"schema\" string member\n",
                   path.c_str(), lineno);
      return false;
    }
    ++events;
  }
  if (events == 0) {
    std::fprintf(stderr, "cts_obstop: %s: no events\n", path.c_str());
    return false;
  }
  return true;
}

bool validate_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cts_obstop: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!obs::json_parse_check(buffer.str(), &error)) {
    std::fprintf(stderr, "cts_obstop: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

int run_validate(const std::vector<std::string>& files, bool quiet) {
  if (files.empty()) {
    std::fprintf(stderr, "cts_obstop: --validate needs at least one file\n");
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : files) {
    const bool ok =
        ends_with(path, ".jsonl") ? validate_jsonl(path) : validate_json(path);
    if (ok && !quiet) std::printf("%s: OK\n", path.c_str());
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}

// -------------------------------------------------------------------------
// --json (one-shot)

int run_json(const std::vector<net::Endpoint>& workers, double timeout_s,
             bool quiet) {
  std::vector<std::string> replies;
  bool all_ok = true;
  for (const net::Endpoint& ep : workers) {
    try {
      std::string raw;
      (void)net::query_stats(ep, timeout_s, &raw);  // parse validates
      replies.push_back(std::move(raw));
    } catch (const std::exception& e) {
      all_ok = false;
      if (!quiet) {
        std::fprintf(stderr, "cts_obstop: %s: %s\n", ep.str().c_str(),
                     e.what());
      }
    }
  }
  if (replies.size() == 1 && workers.size() == 1) {
    std::printf("%s\n", replies.front().c_str());
  } else {
    // Replies are schema-valid JSON documents; the array wrapper is pure
    // concatenation, so each survives byte-identical.
    std::string out = "[";
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (i > 0) out += ",";
      out += replies[i];
    }
    out += "]";
    std::printf("%s\n", out.c_str());
  }
  return all_ok ? 0 : 1;
}

// -------------------------------------------------------------------------
// live table

std::string format_duration(double seconds) {
  if (seconds < 120) return cu::format_fixed(seconds, 0) + "s";
  if (seconds < 7200) return cu::format_fixed(seconds / 60.0, 1) + "m";
  return cu::format_fixed(seconds / 3600.0, 1) + "h";
}

int run_table(const std::vector<net::Endpoint>& workers, double interval_s,
              long long iterations, double timeout_s, bool quiet) {
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  bool every_poll_ok = true;
  for (long long poll = 0; iterations <= 0 || poll < iterations; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_s));
    }
    cu::TextTable table({"worker", "pid", "up", "inflight", "ok", "fail",
                         "retry", "stats", "job mean ms"});
    for (const net::Endpoint& ep : workers) {
      try {
        const net::WorkerStats s = net::query_stats(ep, timeout_s);
        std::string wall_ms = "-";
        for (const auto& [name, hist] : s.metrics.histograms()) {
          if (name == "shardd.job_wall_ms" && hist.stats().count() > 0) {
            wall_ms = cu::format_fixed(hist.stats().mean(), 0);
          }
        }
        table.add_row({s.worker, std::to_string(s.pid),
                       format_duration(s.uptime_s),
                       std::to_string(s.jobs_in_flight),
                       std::to_string(s.jobs_ok),
                       std::to_string(s.jobs_failed),
                       std::to_string(s.jobs_retried),
                       std::to_string(s.stats_served), wall_ms});
      } catch (const std::exception& e) {
        every_poll_ok = false;
        table.add_row({ep.str(), "-", "-", "-", "-", "-", "-", "-", "-"});
        if (!quiet) {
          std::fprintf(stderr, "cts_obstop: %s: %s\n", ep.str().c_str(),
                       e.what());
        }
      }
    }
    if (tty) std::printf("\033[H\033[2J");  // repaint in place
    std::printf("%s", table.render().c_str());
    std::fflush(stdout);
  }
  return every_poll_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr,
                       cu::cli::flag_names(cu::cli::kObstopFlags));
    const bool quiet = flags.get_bool("quiet", false);

    if (flags.has("validate")) {
      // --validate FILE... or --validate=FILE: the flag's own value (when
      // it consumed the first file) joins the positional file list.
      std::vector<std::string> files = positionals(argc, argv);
      const std::string value = flags.get_string("validate", "");
      if (value != "true" && !value.empty()) {
        files.insert(files.begin(), value);
      }
      return run_validate(files, quiet);
    }

    const std::string worker_arg = flags.get_string("workers", "");
    if (worker_arg.empty()) {
      usage();
      return 2;
    }
    const std::vector<net::Endpoint> workers =
        net::parse_worker_list(worker_arg);
    const double timeout_s = flags.get_double("timeout", 5.0);
    if (timeout_s <= 0) {
      std::fprintf(stderr, "cts_obstop: --timeout must be > 0\n");
      return 2;
    }

    if (flags.get_bool("json", false)) {
      return run_json(workers, timeout_s, quiet);
    }

    const double interval_s = flags.get_double("interval", 2.0);
    if (interval_s <= 0) {
      std::fprintf(stderr, "cts_obstop: --interval must be > 0\n");
      return 2;
    }
    return run_table(workers, interval_s, flags.get_int("iterations", 0),
                     timeout_s, quiet);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_obstop: %s\n", e.what());
    return 2;
  }
}
