// cts-obstop: live status monitor for cts_shardd workers.
//
//   cts_obstop --workers=HOST:PORT,... [--interval=SECS] [--iterations=N]
//              [--timeout=SECS] [--slo=METRIC:pQ:MS,...] [--check] [--quiet]
//   cts_obstop --workers=HOST:PORT,... --json
//   cts_obstop --workers=HOST:PORT --openmetrics
//   cts_obstop --validate FILE.json... FILE.jsonl... FILE.om...
//
// Polls each worker's cts.statsreq.v1 endpoint (the job port — cts_shardd
// answers stats concurrently with jobs, without touching the job budget)
// and renders one throttled table row per worker: pid, uptime, jobs in
// flight / ok / failed / retried, served stats queries, the job wall time
// observed by the worker itself, and the p50/p95/p99/p999 job latency from
// the worker's log-bucketed histogram (2% relative error).  On a TTY the
// table repaints in place; when stdout is a pipe it appends one table per
// poll.
//
// --slo=METRIC:pQ:MS declares a latency objective against any log
// histogram the worker exports ("shardd.job_wall_ms:p99:250" = the job
// p99 must stay under 250 ms; comma-separate several).  A breaching
// worker's row turns red on a TTY and the breach is reported on stderr.
// --check makes it a gate: poll once and exit 3 when any SLO is breached.
//
// --json is the scripting mode: query every worker once and print the raw
// schema-valid cts.stats.v1 replies verbatim — a single worker's object as
// is, several workers wrapped in a JSON array — then exit.  CI uses it to
// probe live daemons.  --openmetrics asks one worker (exactly one — a
// merged exposition would repeat TYPE lines) for the OpenMetrics 1.0 text
// variant and prints it verbatim, scrape-style.
//
// --validate turns the tool into the strict checker for the observability
// artifacts: each *.jsonl argument is checked line by line as cts.events.v1
// (every line a strict RFC 8259 object with a "schema" string member),
// *.om / *.prom / *.openmetrics as OpenMetrics 1.0 text (type lines,
// cumulative bucket monotonicity, quantile ranges, single EOF), any other
// file as one strict JSON document (a merged trace or a stats reply).
//
// Exit codes: 0 success, 1 a worker could not be queried (or a validated
// file failed), 2 usage errors, 3 an SLO breached under --check.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cts/net/socket.hpp"
#include "cts/net/stats.hpp"
#include "cts/obs/expfmt.hpp"
#include "cts/obs/json.hpp"
#include "cts/sim/scenario.hpp"
#include "cts/sim/scenario_run.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace net = cts::net;
namespace obs = cts::obs;
namespace cu = cts::util;
namespace sim = cts::sim;

namespace {

void usage() {
  std::printf(
      "usage: cts_obstop --workers=HOST:PORT,... [--interval=SECS]\n"
      "                  [--iterations=N] [--timeout=SECS]\n"
      "                  [--slo=METRIC:pQ:MS,...] [--check] [--quiet]\n"
      "       cts_obstop --workers=HOST:PORT,... --json\n"
      "       cts_obstop --workers=HOST:PORT --openmetrics\n"
      "       cts_obstop --validate FILE.json... FILE.jsonl... FILE.om...\n\n"
      "Polls cts_shardd stats endpoints (cts.statsreq.v1 on the job port)\n"
      "and renders a live per-worker status table with p50/p95/p99/p999\n"
      "job latency columns.  --slo declares latency objectives against any\n"
      "exported log histogram (e.g. shardd.job_wall_ms:p99:250); breaching\n"
      "rows turn red, and with --check one poll is made and a breach exits\n"
      "3.  --json prints each worker's raw cts.stats.v1 reply once and\n"
      "exits (scripting / CI); --openmetrics prints one worker's\n"
      "OpenMetrics 1.0 exposition instead.  --validate strictly checks\n"
      "observability artifacts: *.jsonl as cts.events.v1 lines, *.om /\n"
      "*.prom / *.openmetrics as OpenMetrics 1.0 text, anything else as\n"
      "one RFC 8259 document.\n"
      "Exit codes: 0 success, 1 query/validation failure, 2 usage error,\n"
      "3 SLO breach under --check.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// -------------------------------------------------------------------------
// --validate

/// Checks one cts.events.v1 JSONL file: every non-empty line must be a
/// strict JSON object carrying a "schema" string member.
bool validate_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cts_obstop: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t events = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    if (!obs::json_parse_check(line, &error)) {
      std::fprintf(stderr, "cts_obstop: %s:%zu: %s\n", path.c_str(), lineno,
                   error.c_str());
      return false;
    }
    const obs::JsonValue doc = obs::json_parse(line);
    const obs::JsonValue* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string()) {
      std::fprintf(stderr,
                   "cts_obstop: %s:%zu: missing \"schema\" string member\n",
                   path.c_str(), lineno);
      return false;
    }
    ++events;
  }
  if (events == 0) {
    std::fprintf(stderr, "cts_obstop: %s: no events\n", path.c_str());
    return false;
  }
  return true;
}

/// Deep checks for schema-tagged scenario artifacts: a structurally valid
/// JSON file that claims cts.scenarioresult.v1 / cts.scenariotrace.v1 must
/// also satisfy that schema (spec echo reparses, rep tallies consistent,
/// trace columns aligned).
bool validate_scenario_schemas(const std::string& path,
                               const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema =
      doc.is_object() ? doc.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string()) return true;
  try {
    if (schema->as_string() == sim::kScenarioResultSchema) {
      const sim::ScenarioResultDoc result = sim::parse_scenario_result(text);
      (void)sim::parse_scenario(result.spec_text);  // the echo must reparse
    } else if (schema->as_string() == sim::kScenarioTraceSchema) {
      for (const obs::JsonValue& hop : doc.at("hops").items) {
        const std::size_t rows = hop.at("frames").items.size();
        cu::require(hop.at("workload").items.size() == rows &&
                        hop.at("arrived").items.size() == rows &&
                        hop.at("lost").items.size() == rows,
                    "trace column lengths disagree for hop '" +
                        hop.at("name").as_string() + "'");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_obstop: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

bool validate_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cts_obstop: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!obs::json_parse_check(buffer.str(), &error)) {
    std::fprintf(stderr, "cts_obstop: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return validate_scenario_schemas(path, buffer.str());
}

/// Checks one OpenMetrics 1.0 exposition with the strict validator from
/// cts/obs/expfmt — type lines, cumulative buckets, EOF terminator.
bool validate_openmetrics_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cts_obstop: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> errors =
      obs::validate_openmetrics(buffer.str());
  for (const std::string& e : errors) {
    std::fprintf(stderr, "cts_obstop: %s: %s\n", path.c_str(), e.c_str());
  }
  return errors.empty();
}

bool is_openmetrics_path(const std::string& path) {
  return ends_with(path, ".om") || ends_with(path, ".prom") ||
         ends_with(path, ".openmetrics");
}

int run_validate(const std::vector<std::string>& files, bool quiet) {
  if (files.empty()) {
    std::fprintf(stderr, "cts_obstop: --validate needs at least one file\n");
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : files) {
    const bool ok = ends_with(path, ".jsonl") ? validate_jsonl(path)
                    : is_openmetrics_path(path)
                        ? validate_openmetrics_file(path)
                        : validate_json(path);
    if (ok && !quiet) std::printf("%s: OK\n", path.c_str());
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}

// -------------------------------------------------------------------------
// --json (one-shot)

int run_json(const std::vector<net::Endpoint>& workers, double timeout_s,
             bool quiet) {
  std::vector<std::string> replies;
  bool all_ok = true;
  for (const net::Endpoint& ep : workers) {
    try {
      std::string raw;
      (void)net::query_stats(ep, timeout_s, &raw);  // parse validates
      replies.push_back(std::move(raw));
    } catch (const std::exception& e) {
      all_ok = false;
      if (!quiet) {
        std::fprintf(stderr, "cts_obstop: %s: %s\n", ep.str().c_str(),
                     e.what());
      }
    }
  }
  if (replies.size() == 1 && workers.size() == 1) {
    std::printf("%s\n", replies.front().c_str());
  } else {
    // Replies are schema-valid JSON documents; the array wrapper is pure
    // concatenation, so each survives byte-identical.
    std::string out = "[";
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (i > 0) out += ",";
      out += replies[i];
    }
    out += "]";
    std::printf("%s\n", out.c_str());
  }
  return all_ok ? 0 : 1;
}

// -------------------------------------------------------------------------
// --openmetrics (one-shot scrape)

int run_openmetrics(const std::vector<net::Endpoint>& workers,
                    double timeout_s, bool quiet) {
  if (workers.size() != 1) {
    // A merged multi-worker exposition would repeat every # TYPE line and
    // fail strict validation; scrapers poll one target per request anyway.
    std::fprintf(stderr,
                 "cts_obstop: --openmetrics takes exactly one worker\n");
    return 2;
  }
  try {
    const std::string text =
        net::query_stats_openmetrics(workers.front(), timeout_s);
    std::fputs(text.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    if (!quiet) {
      std::fprintf(stderr, "cts_obstop: %s: %s\n",
                   workers.front().str().c_str(), e.what());
    }
    return 1;
  }
}

// -------------------------------------------------------------------------
// live table

/// One --slo=METRIC:pQ:MS objective: log histogram METRIC's q-quantile
/// must stay under MS milliseconds.
struct SloSpec {
  std::string metric;
  std::string plabel;       ///< "p99" etc., as the user wrote it
  double quantile = 0;      ///< in (0, 1]
  double threshold_ms = 0;  ///< breach when percentile > threshold
};

/// Parses a comma-separated --slo list; throws InvalidArgument with the
/// offending entry on malformed input.
std::vector<SloSpec> parse_slos(const std::string& arg) {
  std::vector<SloSpec> specs;
  std::size_t start = 0;
  while (start <= arg.size()) {
    std::size_t end = arg.find(',', start);
    if (end == std::string::npos) end = arg.size();
    const std::string entry = arg.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto bad = [&entry](const std::string& why) {
      cu::require(false, "--slo entry '" + entry + "': " + why +
                             " (expected METRIC:pQ:MS, e.g. "
                             "shardd.job_wall_ms:p99:250)");
    };
    const std::size_t c2 = entry.rfind(':');
    const std::size_t c1 =
        c2 == std::string::npos ? std::string::npos : entry.rfind(':', c2 - 1);
    if (c1 == std::string::npos || c1 == 0) bad("need METRIC:pQ:MS");
    SloSpec spec;
    spec.metric = entry.substr(0, c1);
    spec.plabel = entry.substr(c1 + 1, c2 - c1 - 1);
    if (spec.plabel.size() < 2 || spec.plabel[0] != 'p') {
      bad("quantile must be pNN (p50, p95, p99, p999)");
    }
    double scale = 1;
    double digits = 0;
    for (std::size_t i = 1; i < spec.plabel.size(); ++i) {
      const char ch = spec.plabel[i];
      if (ch < '0' || ch > '9') bad("quantile must be pNN");
      digits = digits * 10 + (ch - '0');
      scale *= 10;
    }
    spec.quantile = digits / scale;  // p50 -> 0.50, p999 -> 0.999
    if (spec.quantile <= 0 || spec.quantile >= 1) {
      bad("quantile must be in (p0, p<1)");
    }
    // Strict full-string parse: std::stod would silently accept "250abc"
    // and gate on the wrong threshold.
    const std::string threshold_text = entry.substr(c2 + 1);
    if (!cu::try_parse_double(threshold_text, &spec.threshold_ms)) {
      bad("threshold must be a number of milliseconds, got '" +
          threshold_text + "'");
    }
    if (spec.threshold_ms <= 0) bad("threshold must be > 0 ms");
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string format_duration(double seconds) {
  if (seconds < 120) return cu::format_fixed(seconds, 0) + "s";
  if (seconds < 7200) return cu::format_fixed(seconds / 60.0, 1) + "m";
  return cu::format_fixed(seconds / 3600.0, 1) + "h";
}

int run_table(const std::vector<net::Endpoint>& workers, double interval_s,
              long long iterations, double timeout_s,
              const std::vector<SloSpec>& slos, bool check, bool quiet) {
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  if (check) iterations = 1;  // one poll, then gate on the result
  bool every_poll_ok = true;
  bool any_breach = false;
  for (long long poll = 0; iterations <= 0 || poll < iterations; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_s));
    }
    cu::TextTable table({"worker", "pid", "up", "inflight", "ok", "fail",
                         "retry", "stats", "job mean ms", "p50", "p95",
                         "p99", "p999"});
    std::vector<bool> breached_row;
    for (const net::Endpoint& ep : workers) {
      try {
        const net::WorkerStats s = net::query_stats(ep, timeout_s);
        std::string wall_ms = "-";
        for (const auto& [name, hist] : s.metrics.histograms()) {
          if (name == "shardd.job_wall_ms" && hist.stats().count() > 0) {
            wall_ms = cu::format_fixed(hist.stats().mean(), 0);
          }
        }
        // Percentile columns come from the log-bucketed histogram (2%
        // relative error), which the fixed-edge histogram above cannot
        // provide.
        std::string p50 = "-", p95 = "-", p99 = "-", p999 = "-";
        const auto& logs = s.metrics.log_histograms();
        const auto it = logs.find("shardd.job_wall_ms");
        if (it != logs.end() && it->second.stats().count() > 0) {
          p50 = cu::format_fixed(it->second.percentile(0.50), 1);
          p95 = cu::format_fixed(it->second.percentile(0.95), 1);
          p99 = cu::format_fixed(it->second.percentile(0.99), 1);
          p999 = cu::format_fixed(it->second.percentile(0.999), 1);
        }
        bool breach = false;
        for (const SloSpec& slo : slos) {
          const auto sit = logs.find(slo.metric);
          if (sit == logs.end() || sit->second.stats().count() == 0) {
            continue;  // nothing observed yet: no breach to report
          }
          const double value = sit->second.percentile(slo.quantile);
          if (value > slo.threshold_ms) {
            breach = true;
            if (!quiet) {
              std::fprintf(stderr,
                           "cts_obstop: SLO breach on %s: %s %s = %.1f ms "
                           "> %.1f ms\n",
                           s.worker.c_str(), slo.metric.c_str(),
                           slo.plabel.c_str(), value, slo.threshold_ms);
            }
          }
        }
        any_breach = any_breach || breach;
        breached_row.push_back(breach);
        table.add_row({s.worker, std::to_string(s.pid),
                       format_duration(s.uptime_s),
                       std::to_string(s.jobs_in_flight),
                       std::to_string(s.jobs_ok),
                       std::to_string(s.jobs_failed),
                       std::to_string(s.jobs_retried),
                       std::to_string(s.stats_served), wall_ms, p50, p95,
                       p99, p999});
      } catch (const std::exception& e) {
        every_poll_ok = false;
        breached_row.push_back(false);
        table.add_row({ep.str(), "-", "-", "-", "-", "-", "-", "-", "-",
                       "-", "-", "-", "-"});
        if (!quiet) {
          std::fprintf(stderr, "cts_obstop: %s: %s\n", ep.str().c_str(),
                       e.what());
        }
      }
    }
    if (tty) std::printf("\033[H\033[2J");  // repaint in place
    std::string rendered = table.render();
    if (tty && any_breach) {
      // Red rows for breaching workers: colorize whole lines after the
      // fact so ANSI escapes never skew the column-width computation.
      // render() output is line 0 header, line 1 underline, then one line
      // per row in insertion order.
      std::istringstream in(rendered);
      std::ostringstream out;
      std::string line;
      std::size_t lineno = 0;
      while (std::getline(in, line)) {
        const std::size_t row = lineno >= 2 ? lineno - 2 : breached_row.size();
        if (row < breached_row.size() && breached_row[row]) {
          out << "\033[31m" << line << "\033[0m\n";
        } else {
          out << line << '\n';
        }
        ++lineno;
      }
      rendered = out.str();
    }
    std::printf("%s", rendered.c_str());
    std::fflush(stdout);
  }
  if (!every_poll_ok) return 1;
  if (check && any_breach) return 3;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr,
                       cu::cli::flag_names(cu::cli::kObstopFlags));
    const bool quiet = flags.get_bool("quiet", false);

    if (flags.has("validate")) {
      // --validate FILE... or --validate=FILE: the flag's own value (when
      // it consumed the first file) joins the positional file list.
      std::vector<std::string> files = positionals(argc, argv);
      const std::string value = flags.get_string("validate", "");
      if (value != "true" && !value.empty()) {
        files.insert(files.begin(), value);
      }
      return run_validate(files, quiet);
    }

    const std::string worker_arg = flags.get_string("workers", "");
    if (worker_arg.empty()) {
      usage();
      return 2;
    }
    const std::vector<net::Endpoint> workers =
        net::parse_worker_list(worker_arg);
    const double timeout_s = flags.get_double("timeout", 5.0);
    if (timeout_s <= 0) {
      std::fprintf(stderr, "cts_obstop: --timeout must be > 0\n");
      return 2;
    }

    if (flags.get_bool("json", false)) {
      return run_json(workers, timeout_s, quiet);
    }
    if (flags.get_bool("openmetrics", false)) {
      return run_openmetrics(workers, timeout_s, quiet);
    }

    const std::vector<SloSpec> slos = parse_slos(flags.get_string("slo", ""));
    const bool check = flags.get_bool("check", false);
    if (check && slos.empty()) {
      std::fprintf(stderr, "cts_obstop: --check needs at least one --slo\n");
      return 2;
    }
    const double interval_s = flags.get_double("interval", 2.0);
    if (interval_s <= 0) {
      std::fprintf(stderr, "cts_obstop: --interval must be > 0\n");
      return 2;
    }
    return run_table(workers, interval_s, flags.get_int("iterations", 0),
                     timeout_s, slos, check, quiet);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_obstop: %s\n", e.what());
    return 2;
  }
}
