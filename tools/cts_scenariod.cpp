// cts-scenariod: scenario runner — networks of muxes as spec files.
//
//   cts_scenariod run SPEC.scn [--out=PATH] [--hop-trace=PATH]
//                 [--shard=I/N] [--reps=N] [--frames=N] [--warmup=N]
//                 [--seed=U64] [--threads=N] [--metrics=PATH]
//                 [--trace=PATH] [--quiet]
//   cts_scenariod merge PART.json... --out=PATH [--hop-trace=PATH]
//   cts_scenariod check SPEC.scn
//
// run parses a cts.scenario.v1 spec (docs/scenarios.md is the normative
// reference; the parser is the strict one in cts/sim/scenario.hpp) and
// executes it through the generic sharded replication driver: sources
// (model-zoo ids or inline models, with optional smoothing, GCRA policing
// and AAL5 overhead) feed a topology of fluid-mux hops (single, tandem,
// priority two-class), and the run emits one cts.scenarioresult.v1 JSON
// report — per-hop CLR with replication confidence intervals, occupancy
// histograms, analytic CTS/B-R predictions where applicable, and the raw
// per-replication tallies.
//
// With --shard=I/N the worker runs only its contiguous slice of the
// replications; seeds derive from global replication indices, so `merge`
// reassembles the partials into a document byte-identical to a
// single-process run of the same spec (the CI smoke diffs exactly that).
// check parses and validates a spec without running it.
//
// Exit codes: 0 ok, 2 usage / spec / input errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cts/obs/run_report.hpp"
#include "cts/obs/trace.hpp"
#include "cts/sim/scenario.hpp"
#include "cts/sim/scenario_run.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"

namespace cli = cts::util::cli;
namespace cu = cts::util;
namespace obs = cts::obs;
namespace sim = cts::sim;

namespace {

void usage() {
  std::printf(
      "usage: cts_scenariod run SPEC.scn [--out=PATH] [--hop-trace=PATH]\n"
      "                     [--shard=I/N] [--reps=N] [--frames=N]\n"
      "                     [--warmup=N] [--seed=U64] [--threads=N]\n"
      "                     [--metrics=PATH] [--trace=PATH] [--quiet]\n"
      "       cts_scenariod merge PART.json... --out=PATH "
      "[--hop-trace=PATH]\n"
      "       cts_scenariod check SPEC.scn\n\n"
      "Runs a cts.scenario.v1 spec (sources -> network of fluid-mux hops)\n"
      "through the sharded replication harness and writes a\n"
      "cts.scenarioresult.v1 report.  merge reassembles --shard partials\n"
      "byte-identically to a single-process run; check only parses and\n"
      "validates the spec.  docs/scenarios.md documents every spec key.\n\n"
      "flags:\n");
  for (const cli::FlagDoc& flag : cli::kScenariodFlags) {
    std::string name = std::string("--") + flag.name;
    if (flag.value_hint[0] != '\0') {
      name += std::string("=") + flag.value_hint;
    }
    std::printf("  %-22s %s\n", name.c_str(), flag.doc);
  }
}

/// Positional arguments under the same grammar as util::Flags: a token
/// not starting with "--" is positional unless it is the value of a
/// preceding bare "--key" token.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const bool bare = token.find('=') == std::string::npos;
      if (bare && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // the next token is this flag's value
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

std::uint64_t parse_u64_flag(const cu::Flags& flags, const std::string& key,
                             std::uint64_t fallback) {
  if (!flags.has(key)) return fallback;
  const std::string text = flags.get_string(key, "");
  cu::require(!text.empty() &&
                  text.find_first_not_of("0123456789") == std::string::npos,
              "--" + key + " expects a decimal unsigned integer, got '" +
                  text + "'");
  return std::strtoull(text.c_str(), nullptr, 10);
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream os(path, std::ios::binary);
  os << contents;
  cu::require(os.good(), "cannot write '" + path + "'");
}

/// Applies the run-mode scale overrides to a parsed scenario.
sim::Scenario apply_overrides(sim::Scenario scenario, const cu::Flags& flags) {
  if (flags.has("reps")) {
    const std::int64_t reps = flags.get_int("reps", 0);
    cu::require(reps >= 1, "--reps: need at least 1 replication");
    scenario.replications = static_cast<std::size_t>(reps);
  }
  if (flags.has("frames")) {
    const std::int64_t frames = flags.get_int("frames", 0);
    cu::require(frames >= 1, "--frames: need at least 1 frame");
    scenario.frames = static_cast<std::uint64_t>(frames);
  }
  if (flags.has("warmup")) {
    const std::int64_t warmup = flags.get_int("warmup", 0);
    cu::require(warmup >= 0, "--warmup: must be >= 0");
    scenario.warmup = static_cast<std::uint64_t>(warmup);
  }
  scenario.seed = parse_u64_flag(flags, "seed", scenario.seed);
  return scenario;
}

void print_hop_summary(const sim::Scenario& scenario,
                       const sim::ScenarioRunResult& result) {
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    double arrived = 0.0;
    double lost = 0.0;
    for (const sim::ScenarioRepSample& sample : result.samples) {
      arrived += sample.hops[h].arrived();
      lost += sample.hops[h].lost();
    }
    std::printf("  hop %-12s arrived %.6g cells, lost %.6g (clr %.3e)\n",
                scenario.hops[h].name.c_str(), arrived, lost,
                arrived > 0.0 ? lost / arrived : 0.0);
  }
}

int run_mode(const std::vector<std::string>& args, const cu::Flags& flags) {
  cu::require(args.size() == 1,
              "run: need exactly one SPEC.scn argument, got " +
                  std::to_string(args.size()));
  const std::string spec_path = args[0];
  sim::Scenario scenario =
      apply_overrides(sim::parse_scenario(cu::read_text_file(spec_path)),
                      flags);

  sim::ScenarioRunOptions options;
  if (flags.has("shard")) {
    const sim::ShardSpec shard =
        sim::parse_shard_spec(flags.get_string("shard", ""));
    options.shard_index = shard.index;
    options.shard_count = shard.count;
  }
  const std::int64_t threads = flags.get_int("threads", 0);
  cu::require(threads >= 0, "--threads: must be >= 0");
  options.threads = static_cast<unsigned>(threads);
  options.progress = !flags.get_bool("quiet", false);

  const std::string trace_path = flags.get_string("trace", "");
  if (!trace_path.empty()) obs::TraceRecorder::global().enable();

  const sim::ScenarioRunResult result = sim::run_scenario(scenario, options);

  const std::string out_path =
      flags.get_string("out", "scenario_result.json");
  write_file(out_path, sim::write_scenario_result_json(scenario, result));
  std::printf("scenario '%s': %zu/%zu replications -> %s\n",
              scenario.name.c_str(), result.samples.size(),
              scenario.replications, out_path.c_str());
  print_hop_summary(scenario, result);

  const std::string hop_trace_path = flags.get_string("hop-trace", "");
  if (!hop_trace_path.empty()) {
    write_file(hop_trace_path,
               sim::write_scenario_trace_json(scenario, result));
    std::printf("  hop trace -> %s\n", hop_trace_path.c_str());
  }
  const std::string metrics_path = flags.get_string("metrics", "");
  if (!metrics_path.empty()) {
    obs::RunReport report;
    report.set("tool", "cts_scenariod");
    report.set("mode", "run");
    report.set("spec", spec_path);
    report.set("scenario", scenario.name);
    report.set("replications",
               static_cast<std::uint64_t>(scenario.replications));
    report.set("frames", scenario.frames);
    report.set("warmup", scenario.warmup);
    report.set("seed", std::to_string(scenario.seed));
    report.set("shard", sim::format_shard_spec(
                            {options.shard_index, options.shard_count}));
    cu::require(report.write(metrics_path),
                "cannot write '" + metrics_path + "'");
  }
  if (!trace_path.empty()) {
    cu::require(obs::TraceRecorder::global().write(trace_path),
                "cannot write '" + trace_path + "'");
  }
  return 0;
}

int merge_mode(const std::vector<std::string>& args, const cu::Flags& flags) {
  cu::require(!args.empty(), "merge: need at least one PART.json argument");
  std::vector<sim::ScenarioResultDoc> parts;
  parts.reserve(args.size());
  for (const std::string& path : args) {
    try {
      parts.push_back(sim::parse_scenario_result(cu::read_text_file(path)));
    } catch (const cu::InvalidArgument& e) {
      throw cu::InvalidArgument(path + ": " + e.what());
    }
  }
  const std::string merged = sim::merge_scenario_result_json(parts);
  cu::require(flags.has("out"), "merge: --out=PATH is required");
  const std::string out_path = flags.get_string("out", "");
  write_file(out_path, merged);
  std::printf("merged %zu partial(s) -> %s\n", parts.size(),
              out_path.c_str());

  const std::string hop_trace_path = flags.get_string("hop-trace", "");
  if (!hop_trace_path.empty()) {
    const sim::ScenarioResultDoc doc = sim::parse_scenario_result(merged);
    sim::Scenario scenario = sim::parse_scenario(doc.spec_text);
    sim::ScenarioRunResult result;
    result.samples = doc.samples;
    result.traces = doc.traces;
    write_file(hop_trace_path,
               sim::write_scenario_trace_json(scenario, result));
    std::printf("  hop trace -> %s\n", hop_trace_path.c_str());
  }
  return 0;
}

int check_mode(const std::vector<std::string>& args) {
  cu::require(args.size() == 1,
              "check: need exactly one SPEC.scn argument, got " +
                  std::to_string(args.size()));
  const sim::Scenario scenario =
      sim::parse_scenario(cu::read_text_file(args[0]));
  std::size_t instances = 0;
  for (const sim::ScenarioSource& group : scenario.sources) {
    instances += group.count;
  }
  std::string order;
  for (std::size_t h : scenario.hop_order) {
    if (!order.empty()) order += " -> ";
    order += scenario.hops[h].name;
  }
  std::printf(
      "ok: scenario '%s': %zu source group(s) (%zu instances), "
      "%zu hop(s): %s\n",
      scenario.name.c_str(), scenario.sources.size(), instances,
      scenario.hops.size(), order.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cli::flag_names(cli::kScenariodFlags));
    std::vector<std::string> args = positionals(argc, argv);
    if (args.empty()) {
      usage();
      return 2;
    }
    const std::string mode = args.front();
    args.erase(args.begin());
    if (mode == "run") return run_mode(args, flags);
    if (mode == "merge") return merge_mode(args, flags);
    if (mode == "check") return check_mode(args);
    throw cu::InvalidArgument("unknown mode '" + mode +
                              "' (known: run, merge, check)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_scenariod: error: %s\n", e.what());
    return 2;
  }
}
