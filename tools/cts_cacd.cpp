// cts-cacd: admission-control daemon — the paper's CAC rules as a service.
//
//   cts_cacd [serve] [--port=N] [--port-file=PATH] [--max-requests=N]
//            [--deadline=SECS] [--log=PATH] [--log-level=LEVEL] [--quiet]
//            [--profile=PATH] [--profile-folded=PATH] [--profile-hz=N]
//            [--profile-backend=thread|itimer]
//   cts_cacd query --port=N [--host=H] [--model=ID] [--capacity=C]
//            [--buffer=B] [--clr=L] [--kind=K,K,...] [--n=N] [--interp]
//            [--deadline=SECS] [--timeout=SECS] [--request-file=PATH]
//   cts_cacd eval [--model=ID] [--capacity=C] [--buffer=B] [--clr=L]
//            [--kind=K,K,...] [--n=N]
//
// serve (the default) listens on a TCP port (0 = ephemeral; printed and,
// with --port-file, written to a file a launcher can poll) and answers two
// request schemas on the same port, each connection on its own thread:
//
//   * cts.cac.v1 — a batch of admission/BOP queries against one source
//     model (zoo id or inline spec; see include/cts/net/cac.hpp).  Every
//     decision goes through a daemon-lifetime atm::CacCache: rate-function
//     scans are memoized per (model, c, b), cache misses warm-start their
//     CTS scan from the nearest cached buffer point, and opt-in "bop"
//     probes may interpolate between cached grid points.  Admit answers
//     are bit-identical to direct admissible_connections_br/_eb calls.
//   * cts.statsreq.v1 — replies immediately with a cts.stats.v1 snapshot
//     (requests in flight / ok / failed, the metrics registry including
//     the cacd.query_wall_ms log-histogram and cache hit/miss counters,
//     span self-times).  JSON by default, OpenMetrics on request.
//
// Operational events (request served/rejected, connection errors,
// shutdown) are cts.events.v1 JSONL to --log, else stderr unless --quiet.
// A malformed request gets a named {"ok":false} reply — never a crash.
// The request deadline (request deadline_s, else --deadline, default 30s)
// bounds batch processing: queries past the deadline answer with a named
// per-query error instead of stalling the connection.
//
// query is the matching one-shot client (used by the loopback e2e test
// and the CI smoke): it builds one cts.cac.v1 batch from flags — one
// query per --kind entry — or sends --request-file verbatim, prints the
// raw cts.cacresult.v1 reply on stdout, and exits 0 on an ok reply, 1 on
// a request-level error reply, 2 on usage/network errors.  eval answers
// the same flags locally through direct library calls (no daemon, no
// cache) and prints the same document shape — the golden the CI smoke
// diffs the daemon's answers against.
//
// Exit codes: serve 0 on clean shutdown (--max-requests), 2 on
// usage/setup errors; query/eval as above.

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cts/atm/cac.hpp"
#include "cts/atm/cac_cache.hpp"
#include "cts/net/cac.hpp"
#include "cts/net/socket.hpp"
#include "cts/net/stats.hpp"
#include "cts/obs/event_log.hpp"
#include "cts/obs/expfmt.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/profiler.hpp"
#include "cts/obs/span_stats.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"

namespace atm = cts::atm;
namespace fit = cts::fit;
namespace net = cts::net;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

constexpr double kDefaultDeadlineS = 30.0;
constexpr double kRequestReadTimeoutS = 30.0;
constexpr double kReplyWriteTimeoutS = 60.0;
/// Accept poll interval: short enough that --max-requests exits promptly.
constexpr double kAcceptTimeoutS = 0.25;
/// How long a clean shutdown waits for in-flight connections to drain.
constexpr double kDrainTimeoutS = 30.0;

struct Options {
  std::uint16_t port = 0;
  std::string port_file;
  long long max_requests = 0;  ///< 0: serve forever
  double deadline_s = kDefaultDeadlineS;
  bool quiet = false;
  std::string profile_path;
  std::string profile_folded;
  int profile_hz = 97;
  std::string profile_backend = "thread";
};

void usage() {
  std::printf(
      "usage: cts_cacd [serve] [--port=N] [--port-file=PATH]\n"
      "                [--max-requests=N] [--deadline=SECS] [--log=PATH]\n"
      "                [--log-level=debug|info|warn|error] [--quiet]\n"
      "                [--profile=PATH] [--profile-folded=PATH]\n"
      "                [--profile-hz=N]\n"
      "                [--profile-backend=thread|itimer]\n"
      "       cts_cacd query --port=N [--host=H] [--model=ID]\n"
      "                [--capacity=C] [--buffer=B] [--clr=L]\n"
      "                [--kind=admit_br,admit_eb,bop] [--n=N] [--interp]\n"
      "                [--deadline=SECS] [--timeout=SECS]\n"
      "                [--request-file=PATH]\n"
      "       cts_cacd eval  [--model=ID] [--capacity=C] [--buffer=B]\n"
      "                [--clr=L] [--kind=...] [--n=N]\n\n"
      "Admission-control service for the paper's CAC rules: serve answers\n"
      "cts.cac.v1 query batches (admit_br / admit_eb / bop) against a\n"
      "memoized analytic cache, plus cts.statsreq.v1 live stats on the\n"
      "same port.  query is the one-shot client (prints the raw\n"
      "cts.cacresult.v1 reply); eval computes the same answers locally\n"
      "through direct library calls — the golden for CI smokes.  Models\n"
      "are zoo ids (za:0.9, dar:0.9:2, l, white, ar1:0.8, farima:0.3,\n"
      "mginf:1.4, vv:1.5).  Exit codes: serve 0 clean shutdown, 2 setup\n"
      "error; query/eval 0 ok reply, 1 error reply, 2 usage/network.\n");
}

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Everything the connection threads share.  Counters are guarded by `mu`;
/// `cache`, `metrics` and the global TraceRecorder / EventLog are
/// internally synchronized.
struct DaemonState {
  const Options* opt = nullptr;
  std::uint16_t port = 0;
  double start_s = 0;

  std::mutex mu;
  std::condition_variable cv;
  long long served = 0;  ///< replies sent (--max-requests budget)
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t stats_served = 0;
  std::uint64_t in_flight = 0;
  int active_conns = 0;

  atm::CacCache cache;           ///< daemon-lifetime memo
  obs::MetricsRegistry metrics;  ///< daemon-lifetime (stats endpoint)
};

/// Answers one query through the shared cache.  Analytic failures (LRD
/// effective bandwidth, invalid problems) become per-query errors.
net::CacAnswer answer_query(const fit::ModelSpec& model,
                            const net::CacQuery& query, DaemonState* st) {
  net::CacAnswer answer;
  try {
    atm::CacProblem problem;
    problem.capacity_cells_per_frame = query.capacity;
    problem.buffer_cells = query.buffer;
    problem.log10_target_clr = query.log10_clr;
    switch (query.kind) {
      case net::CacQueryKind::kAdmitBr: {
        const atm::CacResult r = st->cache.admissible_br(model, problem);
        answer.admissible = r.admissible;
        answer.log10_bop = r.log10_bop_at_max;
        break;
      }
      case net::CacQueryKind::kAdmitEb: {
        const atm::CacResult r = st->cache.admissible_eb(model, problem);
        answer.admissible = r.admissible;
        answer.log10_bop = r.log10_bop_at_max;
        break;
      }
      case net::CacQueryKind::kBop: {
        problem.validate();
        if (query.interpolate) {
          const atm::CacCache::Stats before = st->cache.stats();
          answer.log10_bop =
              st->cache.log10_bop_interpolated(model, problem, query.n);
          answer.interpolated =
              st->cache.stats().interpolations > before.interpolations;
        } else {
          answer.log10_bop = st->cache.log10_bop(model, problem, query.n);
        }
        answer.admissible = 0;
        break;
      }
    }
    answer.ok = true;
  } catch (const cu::Error& e) {
    answer.ok = false;
    answer.error = e.what();
  }
  return answer;
}

/// Runs one request batch; fills in a cts.cacresult.v1 reply.
net::CacResponse run_request(const std::string& request_text,
                             DaemonState* st) {
  obs::ScopedSpan request_span("cacd.request");
  net::CacResponse response;
  const double start = monotonic_s();
  net::CacRequest request;
  fit::ModelSpec model;
  try {
    request = net::parse_cac_request(request_text);
    model = net::resolve_cac_model(request.model);
  } catch (const cu::Error& e) {
    response.ok = false;
    response.error = e.what();
    return response;
  }
  response.ok = true;
  response.model_name = model.name;
  const double deadline_s =
      request.deadline_s > 0 ? request.deadline_s : st->opt->deadline_s;
  obs::MetricsShard batch_metrics;
  for (const net::CacQuery& query : request.queries) {
    if (monotonic_s() - start > deadline_s) {
      net::CacAnswer late;
      late.ok = false;
      late.error = "cacd: deadline of " + std::to_string(deadline_s) +
                   "s exceeded before this query";
      response.answers.push_back(late);
      batch_metrics.add("cacd.queries_deadline");
      continue;
    }
    const double query_start = monotonic_s();
    net::CacAnswer answer;
    {
      obs::ScopedSpan query_span("cacd.query");
      answer = answer_query(model, query, st);
    }
    const double wall_ms = (monotonic_s() - query_start) * 1e3;
    batch_metrics.add(answer.ok ? "cacd.queries_ok" : "cacd.queries_failed");
    batch_metrics.observe("cacd.query_wall_ms", wall_ms);
    // Log-bucketed twin carries the tail: cts_obstop renders
    // p50/p95/p99/p999 (and SLO flags) from this one.
    batch_metrics.observe_log("cacd.query_wall_ms", wall_ms);
    response.answers.push_back(answer);
  }
  st->metrics.merge(batch_metrics);
  response.elapsed_s = monotonic_s() - start;
  return response;
}

net::WorkerStats snapshot_stats(DaemonState* st) {
  net::WorkerStats stats;
  stats.worker = "cts_cacd:" + std::to_string(st->port);
  stats.pid = static_cast<std::int64_t>(::getpid());
  stats.uptime_s = monotonic_s() - st->start_s;
  {
    const std::lock_guard<std::mutex> lock(st->mu);
    ++st->stats_served;  // this query counts itself
    stats.jobs_in_flight = st->in_flight;
    stats.jobs_ok = st->requests_ok;
    stats.jobs_failed = st->requests_failed;
    stats.stats_served = st->stats_served;
  }
  stats.metrics = st->metrics.snapshot();
  // Cache effectiveness travels as gauges so a monitor sees hit ratios
  // without a custom schema.
  const atm::CacCache::Stats cache = st->cache.stats();
  stats.metrics.gauge("cacd.cache_rate_hits",
                      static_cast<double>(cache.rate_hits));
  stats.metrics.gauge("cacd.cache_rate_misses",
                      static_cast<double>(cache.rate_misses));
  stats.metrics.gauge("cacd.cache_warm_starts",
                      static_cast<double>(cache.warm_starts));
  stats.metrics.gauge("cacd.cache_interpolations",
                      static_cast<double>(cache.interpolations));
  stats.metrics.gauge("cacd.cache_entries",
                      static_cast<double>(cache.rate_entries));
  stats.spans = obs::aggregate_spans(obs::TraceRecorder::global().events());
  return stats;
}

/// One connection, on its own thread: read the request, discriminate by
/// schema tag, reply.  All failure paths restore the shared counters.
void handle_connection(net::Socket conn, DaemonState* st) {
  bool counted_in_flight = false;
  try {
    const std::string request = net::recv_frame(conn, kRequestReadTimeoutS);

    std::string schema;
    try {
      const obs::JsonValue doc = obs::json_parse(request);
      const obs::JsonValue* tag = doc.find("schema");
      if (tag != nullptr && tag->is_string()) schema = tag->as_string();
    } catch (const cu::Error&) {
      // Not JSON at all: falls through to the CAC path, whose strict
      // parser produces the structured error reply.
    }

    if (schema == net::kStatsRequestSchema) {
      net::StatsFormat format = net::StatsFormat::kJson;
      try {
        format = net::parse_stats_request(request);
      } catch (const cu::Error& e) {
        // Unknown format: answer in JSON rather than dropping the scrape.
        obs::log_warn("stats.bad_format", {{"error", e.what()}});
      }
      const net::WorkerStats stats = snapshot_stats(st);
      if (format == net::StatsFormat::kOpenMetrics) {
        obs::MetricsShard shard = stats.metrics;
        shard.gauge("cacd.uptime_s", stats.uptime_s);
        shard.gauge("cacd.requests_in_flight",
                    static_cast<double>(stats.jobs_in_flight));
        shard.add("cacd.stats_served", stats.stats_served);
        obs::OpenMetricsOptions om;
        om.labels = {{"worker", stats.worker}};
        std::ostringstream os;
        obs::write_openmetrics(os, shard, om);
        net::send_frame(conn, os.str(), kReplyWriteTimeoutS);
      } else {
        net::send_frame(conn, net::write_stats_json(stats),
                        kReplyWriteTimeoutS);
      }
      obs::log_debug("stats.query", {});
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(st->mu);
      ++st->in_flight;
      counted_in_flight = true;
    }

    const net::CacResponse response = run_request(request, st);
    if (response.ok) {
      obs::log_info(
          "request.done",
          {{"model", response.model_name},
           {"queries", static_cast<std::int64_t>(response.answers.size())},
           {"wall_ms", response.elapsed_s * 1e3}});
    } else {
      obs::log_warn("request.reject", {{"error", response.error}});
    }
    net::send_frame(conn, net::write_cac_response_json(response),
                    kReplyWriteTimeoutS);

    {
      const std::lock_guard<std::mutex> lock(st->mu);
      ++st->served;
      --st->in_flight;
      counted_in_flight = false;
      if (response.ok) {
        ++st->requests_ok;
      } else {
        ++st->requests_failed;
      }
    }
  } catch (const net::NetError& e) {
    // A broken connection affects only that client; keep serving.
    obs::log_warn("conn.error", {{"error", e.what()}});
    if (counted_in_flight) {
      const std::lock_guard<std::mutex> lock(st->mu);
      --st->in_flight;
      // The reply never went out, but the budget was spent: count the
      // request as served so --max-requests stays deterministic.
      ++st->served;
      ++st->requests_failed;
    }
  }
}

int serve(const Options& opt) {
  DaemonState st;
  st.opt = &opt;
  st.start_s = monotonic_s();
  // Spans feed the stats endpoint's span table, so the recorder is always
  // on in the daemon.
  obs::TraceRecorder::global().enable();

  const bool profiling =
      !opt.profile_path.empty() || !opt.profile_folded.empty();
  if (profiling) {
    obs::Profiler::Options popts;
    popts.hz = opt.profile_hz;
    popts.backend = opt.profile_backend;
    obs::Profiler::global().start(popts);
  }

  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(opt.port, &port);
  st.port = port;
  std::printf("cts_cacd: listening on port %u\n",
              static_cast<unsigned>(port));
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << port << "\n";
    if (!pf) {
      std::fprintf(stderr, "cts_cacd: cannot write port file %s\n",
                   opt.port_file.c_str());
      return 2;
    }
  }
  obs::log_info("daemon.start", {{"port", static_cast<std::int64_t>(port)}});

  for (;;) {
    net::Socket conn = net::accept_connection(listener, kAcceptTimeoutS);
    if (conn.valid()) {
      {
        const std::lock_guard<std::mutex> lock(st.mu);
        ++st.active_conns;
      }
      std::thread([conn = std::move(conn), &st]() mutable {
        handle_connection(std::move(conn), &st);
        {
          const std::lock_guard<std::mutex> lock(st.mu);
          --st.active_conns;
        }
        st.cv.notify_all();
      }).detach();
    }
    {
      const std::lock_guard<std::mutex> lock(st.mu);
      if (opt.max_requests > 0 && st.served >= opt.max_requests) break;
    }
  }

  // Drain: stats/straggler connections get a bounded grace period.
  {
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait_for(lock, std::chrono::duration<double>(kDrainTimeoutS),
                   [&st] { return st.active_conns == 0; });
  }
  if (profiling) {
    obs::Profiler& prof = obs::Profiler::global();
    prof.stop();
    if (!opt.profile_path.empty() && !prof.write(opt.profile_path)) {
      std::fprintf(stderr, "cts_cacd: cannot write profile %s\n",
                   opt.profile_path.c_str());
    }
    if (!opt.profile_folded.empty() &&
        !prof.write_folded_file(opt.profile_folded)) {
      std::fprintf(stderr, "cts_cacd: cannot write folded profile %s\n",
                   opt.profile_folded.c_str());
    }
    obs::log_info("profile.write",
                  {{"samples", static_cast<std::int64_t>(prof.sample_count())},
                   {"path", opt.profile_path.empty() ? opt.profile_folded
                                                     : opt.profile_path}});
  }
  const atm::CacCache::Stats cache = st.cache.stats();
  obs::log_info("daemon.exit",
                {{"served", static_cast<std::int64_t>(st.served)},
                 {"cache_hits", static_cast<std::int64_t>(cache.rate_hits)},
                 {"cache_misses",
                  static_cast<std::int64_t>(cache.rate_misses)},
                 {"reason", "max-requests"}});
  if (!opt.quiet) {
    std::fprintf(stderr, "[served %lld request(s); exiting (--max-requests)]\n",
                 st.served);
  }
  return 0;
}

/// Builds the cts.cac.v1 batch the query/eval modes share: one query per
/// --kind entry, all against the same link configuration.
net::CacRequest request_from_flags(const cu::Flags& flags) {
  net::CacRequest request;
  request.model.zoo_id = flags.get_string("model", "za:0.9");
  request.deadline_s = flags.get_double("deadline", 0.0);
  const std::string kinds = flags.get_string("kind", "admit_br");
  std::size_t start = 0;
  while (start <= kinds.size()) {
    const std::size_t comma = kinds.find(',', start);
    const std::string kind =
        kinds.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    cu::require(!kind.empty(), "cts_cacd: empty entry in --kind list");
    net::CacQuery query;
    if (kind == "admit_br") {
      query.kind = net::CacQueryKind::kAdmitBr;
    } else if (kind == "admit_eb") {
      query.kind = net::CacQueryKind::kAdmitEb;
    } else if (kind == "bop") {
      query.kind = net::CacQueryKind::kBop;
      const std::int64_t n = flags.get_int("n", 1);
      cu::require(n >= 1, "cts_cacd: --n must be >= 1");
      query.n = static_cast<std::size_t>(n);
      query.interpolate = flags.get_bool("interp", false);
    } else {
      throw cu::InvalidArgument("cts_cacd: unknown --kind entry '" + kind +
                                "' (known: admit_br, admit_eb, bop)");
    }
    query.capacity = flags.get_double("capacity", 16140.0);
    query.buffer = flags.get_double("buffer", 4035.0);
    query.log10_clr = flags.get_double("clr", -6.0);
    request.queries.push_back(query);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return request;
}

int run_query(const cu::Flags& flags) {
  const std::int64_t port = flags.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "cts_cacd: query needs --port in [1, 65535]\n");
    return 2;
  }
  net::Endpoint ep;
  ep.host = flags.get_string("host", "127.0.0.1");
  ep.port = static_cast<std::uint16_t>(port);
  const double timeout_s = flags.get_double("timeout", 30.0);

  std::string request_text;
  const std::string request_file = flags.get_string("request-file", "");
  if (!request_file.empty()) {
    request_text = cu::read_text_file(request_file);
  } else {
    request_text = net::write_cac_request_json(request_from_flags(flags));
  }

  net::Socket conn = net::connect_to(ep, timeout_s);
  net::send_frame(conn, request_text, timeout_s);
  const std::string reply = net::recv_frame(conn, timeout_s);
  const net::CacResponse response = net::parse_cac_response(reply);
  std::printf("%s\n", reply.c_str());
  return response.ok ? 0 : 1;
}

int run_eval(const cu::Flags& flags) {
  const net::CacRequest request = request_from_flags(flags);
  const fit::ModelSpec model = net::resolve_cac_model(request.model);
  net::CacResponse response;
  response.ok = true;
  response.model_name = model.name;
  const double start = monotonic_s();
  for (const net::CacQuery& query : request.queries) {
    net::CacAnswer answer;
    try {
      atm::CacProblem problem;
      problem.capacity_cells_per_frame = query.capacity;
      problem.buffer_cells = query.buffer;
      problem.log10_target_clr = query.log10_clr;
      // Direct library calls, no shared cache: the golden the daemon's
      // answers are diffed against.
      switch (query.kind) {
        case net::CacQueryKind::kAdmitBr: {
          const atm::CacResult r =
              atm::admissible_connections_br(model, problem);
          answer.admissible = r.admissible;
          answer.log10_bop = r.log10_bop_at_max;
          break;
        }
        case net::CacQueryKind::kAdmitEb: {
          const atm::CacResult r =
              atm::admissible_connections_eb(model, problem);
          answer.admissible = r.admissible;
          answer.log10_bop = r.log10_bop_at_max;
          break;
        }
        case net::CacQueryKind::kBop: {
          problem.validate();
          atm::CacCache local;
          answer.log10_bop = local.log10_bop(model, problem, query.n);
          break;
        }
      }
      answer.ok = true;
    } catch (const cu::Error& e) {
      answer.ok = false;
      answer.error = e.what();
    }
    response.answers.push_back(answer);
  }
  response.elapsed_s = monotonic_s() - start;
  std::printf("%s\n", net::write_cac_response_json(response).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kCacdFlags));

    std::string mode = "serve";
    if (argc > 1 && argv[1][0] != '-') mode = argv[1];
    if (mode == "query") return run_query(flags);
    if (mode == "eval") return run_eval(flags);
    if (mode != "serve") {
      std::fprintf(stderr,
                   "cts_cacd: unknown mode '%s' (serve, query, eval)\n",
                   mode.c_str());
      return 2;
    }

    Options opt;
    const std::int64_t port = flags.get_int("port", 0);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "cts_cacd: --port must be in [0, 65535]\n");
      return 2;
    }
    opt.port = static_cast<std::uint16_t>(port);
    opt.port_file = flags.get_string("port-file", "");
    opt.max_requests = flags.get_int("max-requests", 0);
    opt.deadline_s = flags.get_double("deadline", kDefaultDeadlineS);
    if (opt.deadline_s <= 0) {
      std::fprintf(stderr, "cts_cacd: --deadline must be > 0\n");
      return 2;
    }
    opt.quiet = flags.get_bool("quiet", false);
    opt.profile_path = flags.get_string("profile", "");
    opt.profile_folded = flags.get_string("profile-folded", "");
    opt.profile_hz = static_cast<int>(flags.get_int("profile-hz", 97));
    opt.profile_backend = flags.get_string("profile-backend", "thread");

    // Event sink: --log beats stderr; --quiet silences the default stderr
    // sink but an explicit --log file still receives events.
    const std::string log_path = flags.get_string("log", "");
    obs::EventLog& log = obs::EventLog::global();
    if (!log_path.empty()) {
      log.open(log_path);
    } else if (!opt.quiet) {
      log.to_stream(&std::cerr);
    }
    log.set_min_level(
        obs::parse_log_level(flags.get_string("log-level", "info")));

    return serve(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_cacd: %s\n", e.what());
    return 2;
  }
}
