// cts-shardd: network shard-execution worker for the replication harness.
//
//   cts_shardd [--port=N] [--port-file=PATH] [--bench-dir=DIR]
//              [--work-dir=DIR] [--max-jobs=N] [--fault-exit-after=N]
//              [--log=PATH] [--log-level=LEVEL] [--quiet]
//
// Listens on a TCP port (0 = ephemeral; the chosen port is printed and,
// with --port-file, written to a file the launcher can poll) and answers
// two request schemas on the same port, each connection handled on its own
// thread:
//
//   * cts.job.v1 — runs the requested replication shard as a child process
//     and streams the child's cts.shard.v1 file back verbatim inside a
//     cts.jobresult.v1 reply (or a structured error: unknown bench,
//     missing binary, child crash/signal/timeout).  Job children are
//     serialized (one at a time) so a shard's timing is never polluted by
//     a sibling; tools/cts_simd `run --workers=` is the dispatching
//     client.  Every reply carries an `obs` section: the job's metrics
//     shard, its trace spans on this daemon's clock, and the
//     request-received / reply-sent timestamps the dispatcher uses for
//     clock-offset correction when merging traces across workers.
//   * cts.statsreq.v1 — replies immediately (concurrently with any running
//     job) with a cts.stats.v1 snapshot: jobs in flight / ok / failed /
//     retried, a lossless metrics-registry snapshot and the span self-time
//     table.  Stats queries do not count against --max-jobs and do not
//     trigger --fault-exit-after: a monitor must never eat the job budget
//     or trip a fault drill.
//
// Operational events (job start/done/fail, connection errors, shutdown)
// are emitted as cts.events.v1 JSONL — to --log=PATH when given, else to
// stderr unless --quiet; --log-level sets the sink threshold (default
// info).  A fixed-size ring buffer additionally records *every* event, and
// is dumped to <work-dir>/job_<n>_flight.jsonl when a job child times out
// or dies on a signal — the flight recorder for post-mortems.
//
// Safety properties:
//   * the job names a bench by REGISTRY id (bench_suite.hpp); the daemon
//     resolves it against its own --bench-dir and refuses anything not in
//     the registry, so a client can never exec an arbitrary path;
//   * job env is restricted to the REPRO_* scale allowlist, and the
//     child's REPRO_* environment is wiped first, so the shard runs at
//     exactly the requested scale regardless of the daemon's own env;
//   * children are waited with a deadline (job timeout_s, default 600s)
//     and SIGKILLed when it expires — a wedged bench can not wedge the
//     worker.
//
// --fault-exit-after=N is a fault-injection hook for the resilience tests
// and drills: after N jobs are served, the daemon dies abruptly (_Exit)
// upon READING the next job request — from the client's side, a worker
// killed mid-shard.  --max-jobs=N exits cleanly after N jobs (CI smoke
// jobs).
//
// Exit codes: 0 clean shutdown (--max-jobs reached), 2 usage/setup errors.

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "bench_suite.hpp"
#include "cts/net/job.hpp"
#include "cts/net/socket.hpp"
#include "cts/net/stats.hpp"
#include "cts/obs/event_log.hpp"
#include "cts/obs/expfmt.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/profiler.hpp"
#include "cts/obs/span_stats.hpp"
#include "cts/obs/trace.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/subprocess.hpp"

namespace fs = std::filesystem;
namespace net = cts::net;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

constexpr double kDefaultJobTimeoutS = 600.0;
constexpr double kRequestReadTimeoutS = 30.0;
constexpr double kReplyWriteTimeoutS = 60.0;
/// Accept poll interval: short enough that --max-jobs exits promptly.
constexpr double kAcceptTimeoutS = 0.25;
/// How long a clean shutdown waits for in-flight connections to drain.
constexpr double kDrainTimeoutS = 30.0;

struct Options {
  std::uint16_t port = 0;
  std::string port_file;
  std::string bench_dir;
  std::string work_dir = "shardd_work";
  long long max_jobs = 0;          ///< 0: serve forever
  long long fault_exit_after = -1; ///< <0: disabled
  bool quiet = false;
  std::string profile_path;        ///< cts.profile.v1 JSON on clean exit
  std::string profile_folded;      ///< collapsed-stack text on clean exit
  int profile_hz = 97;
  std::string profile_backend = "thread";
};

void usage() {
  std::printf(
      "usage: cts_shardd [--port=N] [--port-file=PATH] [--bench-dir=DIR]\n"
      "                  [--work-dir=DIR] [--max-jobs=N]\n"
      "                  [--fault-exit-after=N] [--log=PATH]\n"
      "                  [--log-level=debug|info|warn|error] [--quiet]\n"
      "                  [--profile=PATH] [--profile-folded=PATH]\n"
      "                  [--profile-hz=N] [--profile-backend=thread|itimer]\n\n"
      "TCP worker for `cts_simd run --workers=`: accepts cts.job.v1 shard\n"
      "jobs (bench registry id + shard spec + REPRO_* env + deadline), runs\n"
      "the shard as a child process, and streams the cts.shard.v1 payload\n"
      "back with a per-job obs capture.  The same port answers\n"
      "cts.statsreq.v1 with a live cts.stats.v1 status snapshot (see\n"
      "cts_obstop); send {\"format\":\"openmetrics\"} in the request to get\n"
      "an OpenMetrics 1.0 text exposition instead of JSON.  Events go to\n"
      "--log as cts.events.v1 JSONL (default: stderr unless --quiet).\n"
      "--profile samples the active span stacks while the daemon runs and\n"
      "writes a cts.profile.v1 JSON document on clean exit\n"
      "(--profile-folded: collapsed-stack text).  --port=0 picks an\n"
      "ephemeral port (printed, and written to --port-file when given).\n"
      "Exit codes: 0 clean shutdown (--max-jobs), 2 usage or setup error.\n");
}

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Everything the connection threads share.  Counters are guarded by `mu`;
/// job children are serialized by `job_mu`; `metrics` and the global
/// TraceRecorder / EventLog are internally synchronized.
struct DaemonState {
  const Options* opt = nullptr;
  std::uint16_t port = 0;
  double start_s = 0;

  std::mutex mu;
  std::condition_variable cv;
  long long next_job = 0;          ///< job requests accepted (names files)
  long long served = 0;            ///< job replies sent (--max-jobs budget)
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_retried = 0;
  std::uint64_t stats_served = 0;
  std::uint64_t in_flight = 0;     ///< job accepted, reply not yet sent
  int active_conns = 0;

  std::mutex job_mu;               ///< one bench child at a time
  obs::MetricsRegistry metrics;    ///< daemon-lifetime (stats endpoint)
};

/// Runs one shard job to completion; fills in a cts.jobresult.v1 reply
/// including the per-job obs capture.  Called with st->job_mu held, so the
/// trace slice [event_count() at entry, end) belongs to this job alone.
net::JobResult run_job(const Options& opt, const net::JobRequest& job,
                       long long job_index, std::int64_t recv_us,
                       DaemonState* st) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  const std::size_t span_begin = recorder.event_count();
  net::JobResult result;
  result.has_obs = true;
  result.obs.recv_us = recv_us;
  // Queue wait: request receipt to here — time spent behind the job_mu
  // serialization (and the request parse).  A hot SLO input: a fast worker
  // with a deep queue is slow from the dispatcher's seat.
  const double queue_wait_ms =
      static_cast<double>(recorder.now_us() - recv_us) / 1e3;
  const double start = monotonic_s();
  const std::string tag = std::to_string(job_index);

  {
    obs::ScopedSpan job_span("shardd.job");

    // The registry is the allowlist: an id it does not know throws here and
    // becomes a structured error reply, never an exec.
    const bench::BenchSpec& spec = bench::spec(job.bench_id);
    const std::string binary =
        (fs::path(opt.bench_dir) / spec.binary).string();
    if (::access(binary.c_str(), X_OK) != 0) {
      result.error = "bench binary " + binary + " is not executable";
    } else {
      const std::string shard_path =
          (fs::path(opt.work_dir) / ("job_" + tag + "_shard.json")).string();
      const std::string log_path =
          (fs::path(opt.work_dir) / ("job_" + tag + ".log")).string();
      const std::string shard_flag =
          "--shard=" + cts::sim::format_shard_spec({job.shard_index,
                                                    job.shard_count});
      const std::string out_flag = "--shard-out=" + shard_path;

      const pid_t pid = ::fork();
      if (pid < 0) {
        result.error = std::string("fork failed: ") + std::strerror(errno);
      } else if (pid == 0) {
        // The job's env is authoritative: wipe every scale override the
        // daemon itself inherited, then apply exactly what the client sent.
        for (const std::string& name : net::job_env_allowlist()) {
          ::unsetenv(name.c_str());
        }
        ::unsetenv("REPRO_SHARD");
        for (const auto& [name, value] : job.env) {
          ::setenv(name.c_str(), value.c_str(), 1);
        }
        std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
        if (log != nullptr) ::dup2(STDOUT_FILENO, STDERR_FILENO);
        ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
                out_flag.c_str(), "--quiet", static_cast<char*>(nullptr));
        std::perror("cts_shardd: execl");
        std::_Exit(127);
      } else {
        const double timeout_s =
            job.timeout_s > 0 ? job.timeout_s : kDefaultJobTimeoutS;
        cu::WaitOutcome outcome;
        {
          obs::ScopedSpan exec_span("shardd.exec");
          outcome = cu::wait_child(pid, timeout_s);
        }
        if (!outcome.ok()) {
          result.error = std::string(spec.binary) + " " + outcome.describe() +
                         " (shard " + std::to_string(job.shard_index) + "/" +
                         std::to_string(job.shard_count) + ")";
          ::unlink(shard_path.c_str());
          if (outcome.kind == cu::WaitOutcome::Kind::kTimeout ||
              outcome.kind == cu::WaitOutcome::Kind::kSignaled) {
            // Flight recorder: dump the full event ring (all levels) so a
            // post-mortem sees what the daemon did right before the kill.
            const std::string flight_path =
                (fs::path(opt.work_dir) / ("job_" + tag + "_flight.jsonl"))
                    .string();
            if (obs::EventLog::global().dump_ring_to(flight_path)) {
              obs::log_error("job.flight_recorder",
                             {{"job", static_cast<std::int64_t>(job_index)},
                              {"path", flight_path},
                              {"outcome", outcome.describe()}});
            }
          }
        } else {
          obs::ScopedSpan validate_span("shardd.validate");
          try {
            const std::string text = cu::read_text_file(shard_path);
            (void)cts::sim::parse_shard_file(text);  // refuse broken files
            result.shard_json = text;
            result.ok = true;
          } catch (const cu::Error& e) {
            result.error = std::string("shard file invalid: ") + e.what();
          }
          ::unlink(shard_path.c_str());
        }
      }
    }
  }  // closes "shardd.job"

  result.elapsed_s = monotonic_s() - start;

  // Per-job metrics shard: shipped to the dispatcher as-is (it merges
  // per-job deltas, never cumulative totals) and folded into the daemon's
  // own registry for the stats endpoint.
  obs::MetricsShard job_metrics;
  job_metrics.add(result.ok ? "shardd.jobs_ok" : "shardd.jobs_failed");
  if (job.attempt > 1) job_metrics.add("shardd.jobs_retried");
  job_metrics.observe("shardd.job_wall_ms", result.elapsed_s * 1e3);
  // Log-bucketed twins carry the tail: cts_obstop renders p50/p95/p99/p999
  // (and SLO flags) from these, which fixed edges cannot resolve.
  job_metrics.observe_log("shardd.job_wall_ms", result.elapsed_s * 1e3);
  job_metrics.observe_log("shardd.queue_wait_ms", queue_wait_ms);
  st->metrics.merge(job_metrics);
  result.obs.metrics = std::move(job_metrics);

  const std::vector<obs::TraceEvent> all = recorder.events();
  result.obs.spans.assign(
      all.begin() + static_cast<std::ptrdiff_t>(
                        std::min(span_begin, all.size())),
      all.end());
  result.obs.send_us = recorder.now_us();
  return result;
}

net::WorkerStats snapshot_stats(DaemonState* st) {
  net::WorkerStats stats;
  stats.worker = "cts_shardd:" + std::to_string(st->port);
  stats.pid = static_cast<std::int64_t>(::getpid());
  stats.uptime_s = monotonic_s() - st->start_s;
  {
    const std::lock_guard<std::mutex> lock(st->mu);
    ++st->stats_served;  // this query counts itself
    stats.jobs_in_flight = st->in_flight;
    stats.jobs_ok = st->jobs_ok;
    stats.jobs_failed = st->jobs_failed;
    stats.jobs_retried = st->jobs_retried;
    stats.stats_served = st->stats_served;
  }
  stats.metrics = st->metrics.snapshot();
  stats.spans = obs::aggregate_spans(obs::TraceRecorder::global().events());
  return stats;
}

/// One connection, on its own thread: read the request, discriminate by
/// schema tag, reply.  All failure paths restore the shared counters.
void handle_connection(net::Socket conn, DaemonState* st) {
  const Options& opt = *st->opt;
  bool counted_in_flight = false;
  long long job_index = -1;
  try {
    const std::string request = net::recv_frame(conn, kRequestReadTimeoutS);
    const std::int64_t recv_us = obs::TraceRecorder::global().now_us();

    std::string schema;
    try {
      const obs::JsonValue doc = obs::json_parse(request);
      const obs::JsonValue* tag = doc.find("schema");
      if (tag != nullptr && tag->is_string()) schema = tag->as_string();
    } catch (const cu::Error&) {
      // Not JSON at all: falls through to the job path, whose strict
      // parser produces the structured error reply.
    }

    if (schema == net::kStatsRequestSchema) {
      net::StatsFormat format = net::StatsFormat::kJson;
      try {
        format = net::parse_stats_request(request);
      } catch (const cu::Error& e) {
        // Unknown format: answer in JSON rather than dropping the scrape;
        // the monitor's own parser will surface the mismatch.
        obs::log_warn("stats.bad_format", {{"error", e.what()}});
      }
      const net::WorkerStats stats = snapshot_stats(st);
      if (format == net::StatsFormat::kOpenMetrics) {
        // Exposition view: the lossless snapshot plus the liveness fields
        // that live outside the registry, labelled with the worker id.
        obs::MetricsShard shard = stats.metrics;
        shard.gauge("shardd.uptime_s", stats.uptime_s);
        shard.gauge("shardd.jobs_in_flight",
                    static_cast<double>(stats.jobs_in_flight));
        shard.add("shardd.stats_served", stats.stats_served);
        obs::OpenMetricsOptions om;
        om.labels = {{"worker", stats.worker}};
        std::ostringstream os;
        obs::write_openmetrics(os, shard, om);
        net::send_frame(conn, os.str(), kReplyWriteTimeoutS);
      } else {
        net::send_frame(conn, net::write_stats_json(stats),
                        kReplyWriteTimeoutS);
      }
      obs::log_debug("stats.query", {});
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(st->mu);
      if (opt.fault_exit_after >= 0 && st->served >= opt.fault_exit_after) {
        // Fault-injection hook: die abruptly mid-job, reply never sent.
        std::_Exit(137);
      }
      job_index = st->next_job++;
      ++st->in_flight;
      counted_in_flight = true;
    }

    net::JobResult result;
    int attempt = 0;
    try {
      const net::JobRequest job = net::parse_job(request);
      attempt = job.attempt;
      obs::log_debug(
          "job.start",
          {{"job", static_cast<std::int64_t>(job_index)},
           {"bench", job.bench_id},
           {"shard", std::to_string(job.shard_index) + "/" +
                         std::to_string(job.shard_count)},
           {"attempt", job.attempt}});
      {
        const std::lock_guard<std::mutex> job_lock(st->job_mu);
        result = run_job(opt, job, job_index, recv_us, st);
      }
      // The per-job summary line: everything a post-mortem grep needs.
      obs::log_info(
          result.ok ? "job.done" : "job.fail",
          {{"job", static_cast<std::int64_t>(job_index)},
           {"bench", job.bench_id},
           {"shard", std::to_string(job.shard_index) + "/" +
                         std::to_string(job.shard_count)},
           {"wall_ms", result.elapsed_s * 1e3},
           {"status", result.ok ? "ok" : result.error},
           {"attempt", job.attempt}});
    } catch (const cu::Error& e) {
      result.ok = false;
      result.error = e.what();
      obs::log_warn("job.reject", {{"job", static_cast<std::int64_t>(job_index)}, {"error", e.what()}});
    }
    net::send_frame(conn, net::write_job_result_json(result),
                    kReplyWriteTimeoutS);

    {
      const std::lock_guard<std::mutex> lock(st->mu);
      ++st->served;
      --st->in_flight;
      counted_in_flight = false;
      if (result.ok) {
        ++st->jobs_ok;
      } else {
        ++st->jobs_failed;
      }
      if (attempt > 1) ++st->jobs_retried;
    }
  } catch (const net::NetError& e) {
    // A broken connection affects only that client; keep serving.
    obs::log_warn("conn.error", {{"error", e.what()}});
    if (counted_in_flight) {
      const std::lock_guard<std::mutex> lock(st->mu);
      --st->in_flight;
      // The reply never went out, but the job budget was spent: count the
      // job as served so --max-jobs / fault drills stay deterministic.
      ++st->served;
      ++st->jobs_failed;
    }
  }
}

int serve(const Options& opt) {
  DaemonState st;
  st.opt = &opt;
  st.start_s = monotonic_s();
  // Spans feed both the per-job obs capture and the stats endpoint's span
  // table, so the recorder is always on in the daemon.
  obs::TraceRecorder::global().enable();

  const bool profiling =
      !opt.profile_path.empty() || !opt.profile_folded.empty();
  if (profiling) {
    obs::Profiler::Options popts;
    popts.hz = opt.profile_hz;
    popts.backend = opt.profile_backend;
    obs::Profiler::global().start(popts);
  }

  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(opt.port, &port);
  st.port = port;
  std::printf("cts_shardd: listening on port %u (bench dir %s)\n",
              static_cast<unsigned>(port), opt.bench_dir.c_str());
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << port << "\n";
    if (!pf) {
      std::fprintf(stderr, "cts_shardd: cannot write port file %s\n",
                   opt.port_file.c_str());
      return 2;
    }
  }
  obs::log_info("daemon.start", {{"port", static_cast<std::int64_t>(port)},
                                 {"bench_dir", opt.bench_dir}});

  for (;;) {
    net::Socket conn = net::accept_connection(listener, kAcceptTimeoutS);
    if (conn.valid()) {
      {
        const std::lock_guard<std::mutex> lock(st.mu);
        ++st.active_conns;
      }
      std::thread([conn = std::move(conn), &st]() mutable {
        handle_connection(std::move(conn), &st);
        {
          const std::lock_guard<std::mutex> lock(st.mu);
          --st.active_conns;
        }
        st.cv.notify_all();
      }).detach();
    }
    {
      const std::lock_guard<std::mutex> lock(st.mu);
      if (opt.max_jobs > 0 && st.served >= opt.max_jobs) break;
    }
  }

  // Drain: stats/straggler connections get a bounded grace period.
  {
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait_for(lock,
                   std::chrono::duration<double>(kDrainTimeoutS),
                   [&st] { return st.active_conns == 0; });
  }
  if (profiling) {
    obs::Profiler& prof = obs::Profiler::global();
    prof.stop();
    if (!opt.profile_path.empty() && !prof.write(opt.profile_path)) {
      std::fprintf(stderr, "cts_shardd: cannot write profile %s\n",
                   opt.profile_path.c_str());
    }
    if (!opt.profile_folded.empty() &&
        !prof.write_folded_file(opt.profile_folded)) {
      std::fprintf(stderr, "cts_shardd: cannot write folded profile %s\n",
                   opt.profile_folded.c_str());
    }
    obs::log_info("profile.write",
                  {{"samples", static_cast<std::int64_t>(prof.sample_count())},
                   {"path", opt.profile_path.empty() ? opt.profile_folded
                                                     : opt.profile_path}});
  }
  obs::log_info("daemon.exit",
                {{"served", static_cast<std::int64_t>(st.served)},
                 {"reason", "max-jobs"}});
  if (!opt.quiet) {
    std::fprintf(stderr, "[served %lld job(s); exiting (--max-jobs)]\n",
                 st.served);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kShardDFlags));

    Options opt;
    const std::int64_t port = flags.get_int("port", 0);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "cts_shardd: --port must be in [0, 65535]\n");
      return 2;
    }
    opt.port = static_cast<std::uint16_t>(port);
    opt.port_file = flags.get_string("port-file", "");
    opt.work_dir = flags.get_string("work-dir", "shardd_work");
    opt.max_jobs = flags.get_int("max-jobs", 0);
    opt.fault_exit_after = flags.get_int("fault-exit-after", -1);
    opt.quiet = flags.get_bool("quiet", false);
    opt.profile_path = flags.get_string("profile", "");
    opt.profile_folded = flags.get_string("profile-folded", "");
    opt.profile_hz = static_cast<int>(flags.get_int("profile-hz", 97));
    opt.profile_backend = flags.get_string("profile-backend", "thread");

    // Event sink: --log beats stderr; --quiet silences the default stderr
    // sink but an explicit --log file still receives events.
    const std::string log_path = flags.get_string("log", "");
    obs::EventLog& log = obs::EventLog::global();
    if (!log_path.empty()) {
      log.open(log_path);
    } else if (!opt.quiet) {
      log.to_stream(&std::cerr);
    }
    log.set_min_level(obs::parse_log_level(
        flags.get_string("log-level", "info")));

    // Bench binaries: --bench-dir beats CTS_BENCH_DIR beats the build-tree
    // layout convention (tools/ and bench/ are sibling directories).
    opt.bench_dir = flags.get_string("bench-dir", "");
    if (opt.bench_dir.empty()) {
      const char* env = std::getenv("CTS_BENCH_DIR");
      if (env != nullptr && env[0] != '\0') {
        opt.bench_dir = env;
      } else {
        opt.bench_dir =
            (fs::path(argv[0]).parent_path() / ".." / "bench").string();
      }
    }
    cu::make_dirs(opt.work_dir);
    return serve(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_shardd: %s\n", e.what());
    return 2;
  }
}
