// cts-shardd: network shard-execution worker for the replication harness.
//
//   cts_shardd [--port=N] [--port-file=PATH] [--bench-dir=DIR]
//              [--work-dir=DIR] [--max-jobs=N] [--fault-exit-after=N]
//              [--quiet]
//
// Listens on a TCP port (0 = ephemeral; the chosen port is printed and,
// with --port-file, written to a file the launcher can poll), accepts one
// length-prefixed cts.job.v1 request per connection, runs the requested
// replication shard as a child process, and streams the child's
// cts.shard.v1 file back verbatim inside a cts.jobresult.v1 reply (or a
// structured error: unknown bench, missing binary, child crash/signal/
// timeout).  tools/cts_simd `run --workers=` is the dispatching client.
//
// Safety properties:
//   * the job names a bench by REGISTRY id (bench_suite.hpp); the daemon
//     resolves it against its own --bench-dir and refuses anything not in
//     the registry, so a client can never exec an arbitrary path;
//   * job env is restricted to the REPRO_* scale allowlist, and the
//     child's REPRO_* environment is wiped first, so the shard runs at
//     exactly the requested scale regardless of the daemon's own env;
//   * children are waited with a deadline (job timeout_s, default 600s)
//     and SIGKILLed when it expires — a wedged bench can not wedge the
//     worker.
//
// --fault-exit-after=N is a fault-injection hook for the resilience tests
// and drills: after N jobs are served, the daemon dies abruptly (_Exit)
// upon READING the next request — from the client's side, a worker killed
// mid-shard.  --max-jobs=N exits cleanly after N jobs (CI smoke jobs).
//
// Exit codes: 0 clean shutdown (--max-jobs reached), 2 usage/setup errors.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_suite.hpp"
#include "cts/net/job.hpp"
#include "cts/net/socket.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/subprocess.hpp"

namespace fs = std::filesystem;
namespace net = cts::net;
namespace cu = cts::util;

namespace {

constexpr double kDefaultJobTimeoutS = 600.0;
constexpr double kRequestReadTimeoutS = 30.0;
constexpr double kReplyWriteTimeoutS = 60.0;

struct Options {
  std::uint16_t port = 0;
  std::string port_file;
  std::string bench_dir;
  std::string work_dir = "shardd_work";
  long long max_jobs = 0;          ///< 0: serve forever
  long long fault_exit_after = -1; ///< <0: disabled
  bool quiet = false;
};

void usage() {
  std::printf(
      "usage: cts_shardd [--port=N] [--port-file=PATH] [--bench-dir=DIR]\n"
      "                  [--work-dir=DIR] [--max-jobs=N]\n"
      "                  [--fault-exit-after=N] [--quiet]\n\n"
      "TCP worker for `cts_simd run --workers=`: accepts cts.job.v1 shard\n"
      "jobs (bench registry id + shard spec + REPRO_* env + deadline), runs\n"
      "the shard as a child process, and streams the cts.shard.v1 payload\n"
      "back.  --port=0 picks an ephemeral port (printed, and written to\n"
      "--port-file when given).\n"
      "Exit codes: 0 clean shutdown (--max-jobs), 2 usage or setup error.\n");
}

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Runs one shard job to completion; fills in a cts.jobresult.v1 reply.
net::JobResult run_job(const Options& opt, const net::JobRequest& job,
                       long long job_index) {
  net::JobResult result;
  const double start = monotonic_s();

  // The registry is the allowlist: an id it does not know throws here and
  // becomes a structured error reply, never an exec.
  const bench::BenchSpec& spec = bench::spec(job.bench_id);
  const std::string binary = (fs::path(opt.bench_dir) / spec.binary).string();
  if (::access(binary.c_str(), X_OK) != 0) {
    result.error = "bench binary " + binary + " is not executable";
    return result;
  }

  const std::string tag = std::to_string(job_index);
  const std::string shard_path =
      (fs::path(opt.work_dir) / ("job_" + tag + "_shard.json")).string();
  const std::string log_path =
      (fs::path(opt.work_dir) / ("job_" + tag + ".log")).string();
  const std::string shard_flag =
      "--shard=" + cts::sim::format_shard_spec({job.shard_index,
                                                job.shard_count});
  const std::string out_flag = "--shard-out=" + shard_path;

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.error = std::string("fork failed: ") + std::strerror(errno);
    return result;
  }
  if (pid == 0) {
    // The job's env is authoritative: wipe every scale override the daemon
    // itself inherited, then apply exactly what the client sent.
    for (const std::string& name : net::job_env_allowlist()) {
      ::unsetenv(name.c_str());
    }
    ::unsetenv("REPRO_SHARD");
    for (const auto& [name, value] : job.env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
    if (log != nullptr) ::dup2(STDOUT_FILENO, STDERR_FILENO);
    ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
            out_flag.c_str(), "--quiet", static_cast<char*>(nullptr));
    std::perror("cts_shardd: execl");
    std::_Exit(127);
  }

  const double timeout_s =
      job.timeout_s > 0 ? job.timeout_s : kDefaultJobTimeoutS;
  const cu::WaitOutcome outcome = cu::wait_child(pid, timeout_s);
  result.elapsed_s = monotonic_s() - start;
  if (!outcome.ok()) {
    result.error = std::string(spec.binary) + " " + outcome.describe() +
                   " (shard " + std::to_string(job.shard_index) + "/" +
                   std::to_string(job.shard_count) + ")";
    ::unlink(shard_path.c_str());
    return result;
  }

  try {
    const std::string text = cu::read_text_file(shard_path);
    (void)cts::sim::parse_shard_file(text);  // refuse to ship a broken file
    result.shard_json = text;
    result.ok = true;
  } catch (const cu::Error& e) {
    result.error = std::string("shard file invalid: ") + e.what();
  }
  ::unlink(shard_path.c_str());
  return result;
}

int serve(const Options& opt) {
  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(opt.port, &port);
  std::printf("cts_shardd: listening on port %u (bench dir %s)\n",
              static_cast<unsigned>(port), opt.bench_dir.c_str());
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << port << "\n";
    if (!pf) {
      std::fprintf(stderr, "cts_shardd: cannot write port file %s\n",
                   opt.port_file.c_str());
      return 2;
    }
  }

  long long served = 0;
  for (;;) {
    net::Socket conn = net::accept_connection(listener, 3600.0);
    if (!conn.valid()) continue;  // accept window elapsed; keep listening
    try {
      const std::string request = net::recv_frame(conn, kRequestReadTimeoutS);
      if (opt.fault_exit_after >= 0 && served >= opt.fault_exit_after) {
        // Fault-injection hook: die abruptly mid-job, reply never sent.
        std::_Exit(137);
      }
      net::JobResult result;
      try {
        const net::JobRequest job = net::parse_job(request);
        if (!opt.quiet) {
          std::fprintf(stderr, "[job %lld: %s shard %zu/%zu]\n", served,
                       job.bench_id.c_str(), job.shard_index,
                       job.shard_count);
        }
        result = run_job(opt, job, served);
      } catch (const cu::Error& e) {
        result.ok = false;
        result.error = e.what();
      }
      if (!opt.quiet && !result.ok) {
        std::fprintf(stderr, "[job %lld failed: %s]\n", served,
                     result.error.c_str());
      }
      net::send_frame(conn, net::write_job_result_json(result),
                      kReplyWriteTimeoutS);
      ++served;
    } catch (const net::NetError& e) {
      // A broken connection affects only that client; keep serving.
      if (!opt.quiet) {
        std::fprintf(stderr, "[connection error: %s]\n", e.what());
      }
    }
    if (opt.max_jobs > 0 && served >= opt.max_jobs) {
      if (!opt.quiet) {
        std::fprintf(stderr, "[served %lld job(s); exiting (--max-jobs)]\n",
                     served);
      }
      return 0;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kShardDFlags));

    Options opt;
    const std::int64_t port = flags.get_int("port", 0);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "cts_shardd: --port must be in [0, 65535]\n");
      return 2;
    }
    opt.port = static_cast<std::uint16_t>(port);
    opt.port_file = flags.get_string("port-file", "");
    opt.work_dir = flags.get_string("work-dir", "shardd_work");
    opt.max_jobs = flags.get_int("max-jobs", 0);
    opt.fault_exit_after = flags.get_int("fault-exit-after", -1);
    opt.quiet = flags.get_bool("quiet", false);

    // Bench binaries: --bench-dir beats CTS_BENCH_DIR beats the build-tree
    // layout convention (tools/ and bench/ are sibling directories).
    opt.bench_dir = flags.get_string("bench-dir", "");
    if (opt.bench_dir.empty()) {
      const char* env = std::getenv("CTS_BENCH_DIR");
      if (env != nullptr && env[0] != '\0') {
        opt.bench_dir = env;
      } else {
        opt.bench_dir =
            (fs::path(argv[0]).parent_path() / ".." / "bench").string();
      }
    }
    cu::make_dirs(opt.work_dir);
    return serve(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_shardd: %s\n", e.what());
    return 2;
  }
}
