// cts-benchcmp: noise-aware regression checker for BENCH_*.json files.
//
//   cts_benchcmp BASELINE.json CANDIDATE.json [--k=3] [--pct=5]
//                [--metrics=wall_s,user_s,sys_s,max_rss_kb] [--quiet]
//   cts_benchcmp --validate FILE.json
//
// Prints a per-metric delta table and exits 0 when the candidate holds the
// baseline, 1 when at least one metric regresses beyond BOTH the k x MAD
// noise gate and the pct%% relative gate (see cts/obs/bench_compare.hpp),
// and 2 on usage or parse errors — so CI can gate on the exit code.
// sys_s is reported but informational by default (verdict "info"); an
// explicit --metrics list gates on everything it names.
// --validate checks one file: strict RFC 8259 grammar plus the
// cts.bench.v1 schema tag — a document with a missing or unknown schema
// is rejected (exit 2) with a message naming what was found.
//
// Note: pass value flags in --key=value form; positional file arguments
// that follow a bare boolean flag would otherwise be consumed as its value.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cts/obs/bench_compare.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"

namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

void usage() {
  std::printf(
      "usage: cts_benchcmp BASELINE.json CANDIDATE.json [--k=3] [--pct=5]\n"
      "                    [--metrics=wall_s,user_s,...] [--quiet]\n"
      "       cts_benchcmp --validate FILE.json\n\n"
      "--validate checks strict RFC 8259 grammar AND the cts.bench.v1\n"
      "schema tag.  Exit codes: 0 no regression, 1 regression beyond\n"
      "threshold, 2 usage/parse/schema error.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr,
                       cu::cli::flag_names(cu::cli::kBenchcmpFlags));
    const bool quiet = flags.get_bool("quiet", false);
    const std::vector<std::string> files = positionals(argc, argv);

    if (flags.has("validate")) {
      // --validate FILE or --validate=FILE.
      std::string path = flags.get_string("validate", "");
      if (path == "true" || path.empty()) {
        if (files.empty()) {
          usage();
          return 2;
        }
        path = files.front();
      }
      // Throws with path + errno on an unreadable file (exit 2 below).
      const std::string text = cu::read_text_file(path);
      std::string error;
      if (!obs::json_parse_check(text, &error)) {
        std::fprintf(stderr, "cts_benchcmp: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
        return 2;
      }
      // Valid JSON is not enough: a stray document must not pass as a
      // perf baseline, so the schema tag is checked too.
      try {
        obs::require_bench_schema(obs::json_parse(text));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cts_benchcmp: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
      }
      if (!quiet) {
        std::printf("%s: valid %s document\n", path.c_str(),
                    obs::kBenchSchema);
      }
      return 0;
    }

    if (files.size() != 2) {
      usage();
      return 2;
    }
    obs::CompareOptions options;
    options.k_mad = flags.get_double("k", options.k_mad);
    options.min_rel = flags.get_double("pct", options.min_rel * 100.0) / 100.0;
    if (flags.has("metrics")) {
      // An explicit list gates on everything it names (including sys_s,
      // which is informational-only by default).
      options.metrics = split_csv(flags.get_string("metrics", ""));
      options.info_metrics.clear();
    }

    obs::JsonValue baseline;
    obs::JsonValue candidate;
    for (int i = 0; i < 2; ++i) {
      const std::string text =
          cu::read_text_file(files[static_cast<std::size_t>(i)]);
      (i == 0 ? baseline : candidate) = obs::json_parse(text);
    }

    const obs::CompareReport report =
        obs::compare_bench_reports(baseline, candidate, options);

    if (!quiet) {
      std::printf("%s", obs::format_compare_report(report).c_str());
    }

    if (report.has_regression()) {
      std::fputs(obs::format_regressions(report, options).c_str(), stderr);
      return 1;
    }
    if (!quiet) std::printf("no regressions beyond threshold\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_benchcmp: %s\n", e.what());
    return 2;
  }
}
