// cts-benchcmp: noise-aware regression checker for BENCH_*.json files.
//
//   cts_benchcmp BASELINE.json CANDIDATE.json [--k=3] [--pct=5]
//                [--metrics=wall_s,user_s,sys_s,max_rss_kb] [--quiet]
//   cts_benchcmp --validate FILE.json
//
// Prints a per-metric delta table and exits 0 when the candidate holds the
// baseline, 1 when at least one metric regresses beyond BOTH the k x MAD
// noise gate and the pct%% relative gate (see cts/obs/bench_compare.hpp),
// and 2 on usage or parse errors — so CI can gate on the exit code.
// --validate only runs the strict RFC 8259 validator over one file.
//
// Note: pass value flags in --key=value form; positional file arguments
// that follow a bare boolean flag would otherwise be consumed as its value.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cts/obs/bench_compare.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/table.hpp"

namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void usage() {
  std::printf(
      "usage: cts_benchcmp BASELINE.json CANDIDATE.json [--k=3] [--pct=5]\n"
      "                    [--metrics=wall_s,user_s,...] [--quiet]\n"
      "       cts_benchcmp --validate FILE.json\n\n"
      "Exit codes: 0 no regression, 1 regression beyond threshold, 2 "
      "usage/parse error.\n");
}

/// Tokens not consumed by the flag parser, mirroring Flags' rule that a
/// bare "--key" followed by a non-flag token takes it as its value.
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr,
                       {"k", "pct", "metrics", "quiet", "validate", "help"});
    const bool quiet = flags.get_bool("quiet", false);
    const std::vector<std::string> files = positionals(argc, argv);

    if (flags.has("validate")) {
      // --validate FILE or --validate=FILE.
      std::string path = flags.get_string("validate", "");
      if (path == "true" || path.empty()) {
        if (files.empty()) {
          usage();
          return 2;
        }
        path = files.front();
      }
      const std::string text = read_file(path);
      if (text.empty()) {
        std::fprintf(stderr, "cts_benchcmp: cannot read %s\n", path.c_str());
        return 2;
      }
      std::string error;
      if (!obs::json_parse_check(text, &error)) {
        std::fprintf(stderr, "cts_benchcmp: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
        return 2;
      }
      if (!quiet) std::printf("%s: valid JSON\n", path.c_str());
      return 0;
    }

    if (files.size() != 2) {
      usage();
      return 2;
    }
    obs::CompareOptions options;
    options.k_mad = flags.get_double("k", options.k_mad);
    options.min_rel = flags.get_double("pct", options.min_rel * 100.0) / 100.0;
    if (flags.has("metrics")) {
      options.metrics = split_csv(flags.get_string("metrics", ""));
    }

    obs::JsonValue baseline;
    obs::JsonValue candidate;
    for (int i = 0; i < 2; ++i) {
      const std::string text = read_file(files[static_cast<std::size_t>(i)]);
      if (text.empty()) {
        std::fprintf(stderr, "cts_benchcmp: cannot read %s\n",
                     files[static_cast<std::size_t>(i)].c_str());
        return 2;
      }
      (i == 0 ? baseline : candidate) = obs::json_parse(text);
    }

    const obs::CompareReport report =
        obs::compare_bench_reports(baseline, candidate, options);

    if (!quiet) {
      cu::TextTable table(
          {"bench", "metric", "baseline", "candidate", "delta", "verdict"});
      for (const obs::MetricDelta& d : report.deltas) {
        table.add_row({d.bench, d.metric,
                       cu::format_sci(d.baseline_median, 4),
                       cu::format_sci(d.candidate_median, 4), pct(d.rel),
                       d.regression
                           ? "REGRESSION"
                           : (d.improvement ? "improvement" : "ok")});
      }
      std::printf("%s\n", table.render().c_str());
      for (const std::string& note : report.notes) {
        std::printf("[note: %s]\n", note.c_str());
      }
    }

    if (report.has_regression()) {
      for (const obs::MetricDelta& d : report.deltas) {
        if (!d.regression) continue;
        std::fprintf(stderr,
                     "REGRESSION: %s %s %s (median %.6g -> %.6g, > %.1f x "
                     "MAD and > %.1f%%)\n",
                     d.bench.c_str(), d.metric.c_str(), pct(d.rel).c_str(),
                     d.baseline_median, d.candidate_median, options.k_mad,
                     options.min_rel * 100.0);
      }
      return 1;
    }
    if (!quiet) std::printf("no regressions beyond threshold\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_benchcmp: %s\n", e.what());
    return 2;
  }
}
