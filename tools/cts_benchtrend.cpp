// cts-benchtrend: perf-trajectory reporting over committed BENCH_*.json
// baselines.
//
//   cts_benchtrend                            # scan . for BENCH_*.json
//   cts_benchtrend BENCH_a.json BENCH_b.json  # explicit chain
//   cts_benchtrend --md=trend.md --csv=trend.csv --svg=trend.svg
//   cts_benchtrend --gate                     # exit 1 on sustained drift
//   cts_benchtrend --validate FILE.json...    # schema check only
//
// Loads every baseline (strict JSON + the cts.bench.v1 schema tag — a
// file with a missing or unknown schema is rejected with a message naming
// what was found), orders them by generated date then filename, and
// builds per-bench median series with MAD/95%-CI bands (see
// cts/obs/bench_trend.hpp).  A series flags DRIFT only when the last
// --window baselines all sit beyond the noise band around the first
// baseline — a sustained trend, not a single noisy delta.  Output: a
// markdown table (stdout and/or --md), a CSV mirror (--csv) and a
// self-contained SVG sparkline chart (--svg), one chart per suite when
// the baselines span several.
//
// Exit codes: 0 ok, 1 sustained drift (only with --gate), 2 usage/parse
// errors — CI runs --validate plus the report without --gate, because
// shared runners are too noisy to gate on (see ROADMAP).
//
// Note: pass value flags in --key=value form; positional file arguments
// that follow a bare boolean flag would otherwise be consumed as its value.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cts/obs/bench_trend.hpp"
#include "cts/obs/svg.hpp"
#include "cts/util/cli_registry.hpp"
#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/flags.hpp"

namespace fs = std::filesystem;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

void usage() {
  std::printf(
      "usage: cts_benchtrend [BENCH_*.json ...] [--dir=DIR] [--metrics=CSV]\n"
      "                      [--md=PATH] [--csv=PATH] [--svg=PATH]\n"
      "                      [--k=3] [--pct=5] [--window=2] [--gate] "
      "[--quiet]\n"
      "       cts_benchtrend --validate FILE.json...\n\n"
      "Builds the perf trajectory across >= 2 cts.bench.v1 baselines:\n"
      "per-bench median series with MAD/CI bands, Theil-Sen slope, and\n"
      "sustained-drift detection (the last --window baselines all beyond\n"
      "the noise band around the first).  Exit codes: 0 ok, 1 drift (only\n"
      "with --gate), 2 usage/parse errors.\n");
}

/// Tokens not consumed by the flag parser (same rule as cts_benchcmp).
std::vector<std::string> positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;  // "--key value"
      }
      continue;
    }
    out.push_back(token);
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// BENCH_*.json files under `dir`, lexicographically sorted.
std::vector<std::string> scan_dir(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int validate(const std::vector<std::string>& files, bool quiet) {
  if (files.empty()) {
    usage();
    return 2;
  }
  int bad = 0;
  for (const std::string& path : files) {
    std::string text;
    std::string read_error;
    if (!cu::read_text_file(path, &text, &read_error)) {
      std::fprintf(stderr, "cts_benchtrend: %s\n", read_error.c_str());
      ++bad;
      continue;
    }
    try {
      const obs::BaselineDoc doc = obs::parse_baseline(path, text);
      if (!quiet) {
        std::printf("%s: valid cts.bench.v1 (suite %s, %zu benches, "
                    "generated %s)\n",
                    path.c_str(), doc.suite.c_str(),
                    doc.doc.at("benches").size(), doc.generated.c_str());
      }
    } catch (const cu::Error& e) {
      std::fprintf(stderr, "cts_benchtrend: %s\n", e.what());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 2;
}

/// Derives a per-suite output path: "trend.svg" -> "trend_smoke.svg".
std::string suite_path(const std::string& path, const std::string& suite,
                       bool multi_suite) {
  if (!multi_suite) return path;
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos) return path + "_" + suite;
  return path.substr(0, dot) + "_" + suite + path.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cu::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      usage();
      return 0;
    }
    flags.warn_unknown(std::cerr, cu::cli::flag_names(cu::cli::kBenchtrendFlags));
    const bool quiet = flags.get_bool("quiet", false);

    std::vector<std::string> files = positionals(argc, argv);
    if (flags.has("validate")) {
      // --validate FILE... or --validate=FILE.
      const std::string value = flags.get_string("validate", "");
      if (value != "true" && !value.empty()) files.insert(files.begin(), value);
      return validate(files, quiet);
    }

    if (files.empty()) files = scan_dir(flags.get_string("dir", "."));
    if (files.size() < 2) {
      std::fprintf(stderr,
                   "cts_benchtrend: need >= 2 BENCH_*.json baselines for a "
                   "trajectory (found %zu)\n",
                   files.size());
      return 2;
    }

    obs::TrendOptions options;
    options.k_mad = flags.get_double("k", options.k_mad);
    options.min_rel = flags.get_double("pct", options.min_rel * 100.0) / 100.0;
    options.window =
        static_cast<std::size_t>(flags.get_int("window", 2));
    cu::require(options.window >= 1, "cts_benchtrend: --window must be >= 1");
    if (flags.has("metrics")) {
      options.metrics = split_csv(flags.get_string("metrics", ""));
      cu::require(!options.metrics.empty(),
                  "cts_benchtrend: --metrics must name at least one metric");
    }

    // Load every baseline; a file that is not a cts.bench.v1 document is a
    // hard error, never skipped silently.
    std::vector<obs::BaselineDoc> docs;
    for (const std::string& path : files) {
      // Throws with path + errno on an unreadable file (exit 2 below).
      docs.push_back(obs::parse_baseline(path, cu::read_text_file(path)));
    }
    obs::sort_baselines(docs);

    // One trajectory per suite: medians from different suites/scales are
    // not comparable, so they chart separately.
    std::map<std::string, std::vector<obs::BaselineDoc>> by_suite;
    for (obs::BaselineDoc& doc : docs) {
      by_suite[doc.suite].push_back(std::move(doc));
    }

    bool any_drift = false;
    std::string all_markdown;
    std::string all_csv;
    for (const auto& [suite, suite_docs] : by_suite) {
      if (suite_docs.size() < 2) {
        std::fprintf(stderr,
                     "cts_benchtrend: suite '%s' has only one baseline (%s); "
                     "skipping its trajectory\n",
                     suite.c_str(), suite_docs.front().path.c_str());
        continue;
      }
      const obs::TrendReport report = obs::build_trend(suite_docs, options);
      any_drift = any_drift || report.has_drift();
      all_markdown += obs::trend_markdown(report, options);
      all_markdown += "\n";
      all_csv += obs::trend_csv(report);
      if (flags.has("svg")) {
        const std::string path =
            suite_path(flags.get_string("svg", "trend.svg"), suite,
                       by_suite.size() > 1);
        if (!write_file(path, obs::trend_svg(report))) {
          std::fprintf(stderr, "cts_benchtrend: cannot write %s\n",
                       path.c_str());
          return 2;
        }
        if (!quiet) {
          std::fprintf(stderr, "[cts_benchtrend] wrote %s\n", path.c_str());
        }
      }
    }
    if (all_markdown.empty()) {
      std::fprintf(stderr,
                   "cts_benchtrend: no suite had >= 2 baselines to chart\n");
      return 2;
    }

    if (flags.has("md")) {
      const std::string path = flags.get_string("md", "trend.md");
      if (!write_file(path, all_markdown)) {
        std::fprintf(stderr, "cts_benchtrend: cannot write %s\n", path.c_str());
        return 2;
      }
      if (!quiet) {
        std::fprintf(stderr, "[cts_benchtrend] wrote %s\n", path.c_str());
      }
    }
    if (flags.has("csv")) {
      const std::string path = flags.get_string("csv", "trend.csv");
      if (!write_file(path, all_csv)) {
        std::fprintf(stderr, "cts_benchtrend: cannot write %s\n", path.c_str());
        return 2;
      }
      if (!quiet) {
        std::fprintf(stderr, "[cts_benchtrend] wrote %s\n", path.c_str());
      }
    }
    if (!quiet) std::fputs(all_markdown.c_str(), stdout);

    if (any_drift && flags.get_bool("gate", false)) {
      std::fprintf(stderr,
                   "DRIFT: at least one bench metric moved beyond the noise "
                   "band for the last %zu baseline(s)\n",
                   options.window);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cts_benchtrend: %s\n", e.what());
    return 2;
  }
}
